"""Persistence: save/load the time-series store as JSON-lines snapshots.

The real SpotLake publishes its collected dataset for download; the
artifact ships pickled frames.  Here each table serializes to a compact
JSON-lines file (one line per series: dimensions, measure, change-point
arrays), which survives round-trips losslessly -- including the
observation counters that back the dedup statistics and the table's
retention policy.

Snapshot files are published atomically (temp file + ``os.replace`` via
:func:`repro._util.atomic_open`): a crash mid-dump leaves the previous
good snapshot untouched instead of truncating it.  For incremental
durability between snapshots, see :mod:`repro.storage` (the write-ahead
log / segment engine); its recovery path and these snapshots reconstruct
byte-identical stores from the same write stream.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from .._util import atomic_open
from .compression import ChangePointSeries
from .record import SeriesKey
from .store import RetentionPolicy, TimeSeriesStore
from .table import Table

#: Snapshot format version written into every file header.
FORMAT_VERSION = 1


def dump_table(table: Table, path: Union[str, Path],
               policy: Optional[RetentionPolicy] = None) -> int:
    """Write one table to a JSON-lines file; returns series written.

    The write is atomic: a crash mid-dump leaves any previous snapshot at
    ``path`` intact.  ``policy`` (when given) is serialized into the
    header so retention configuration survives the round trip.
    """
    path = Path(path)
    count = 0
    with atomic_open(path) as fh:
        header = {"format": FORMAT_VERSION, "table": table.name,
                  "records_written": table.stats.records_written}
        if policy is not None:
            header["retention"] = policy.max_age_seconds
        fh.write(json.dumps(header, allow_nan=False) + "\n")
        for key in table.series_keys():
            series = table.series(key)
            assert series is not None
            line = {
                "measure": key.measure_name,
                "dimensions": dict(key.dimensions),
                "times": series.times,
                "values": series.values,
                "observed_until": series.observed_until,
                "observations": series.observation_count,
            }
            fh.write(json.dumps(line, allow_nan=False) + "\n")
            count += 1
    return count


def load_table_with_policy(path: Union[str, Path],
                           ) -> Tuple[Table, Optional[RetentionPolicy]]:
    """Reconstruct a table and its serialized retention policy.

    The policy is None for snapshots written without one (including all
    pre-retention-header snapshots, which stay loadable).
    """
    path = Path(path)
    with path.open("r", encoding="utf-8") as fh:
        header = json.loads(fh.readline())
        if header.get("format") != FORMAT_VERSION:
            raise ValueError(f"unsupported snapshot format {header.get('format')!r}")
        table = Table(header["table"])
        for raw in fh:
            line = json.loads(raw)
            series = ChangePointSeries(
                times=[float(t) for t in line["times"]],
                values=line["values"],
                observed_until=float(line["observed_until"]),
                observation_count=int(line["observations"]),
            )
            key = SeriesKey(line["measure"],
                            tuple(sorted(line["dimensions"].items())))
            # install the series with its indexes (and the generation /
            # latest-value views), bypassing re-ingestion
            table.install_series(key, series)
        table.stats.records_written = header["records_written"]
    policy = None
    if "retention" in header:
        policy = RetentionPolicy(max_age_seconds=header["retention"])
    return table, policy


def load_table(path: Union[str, Path]) -> Table:
    """Reconstruct a table from a JSON-lines snapshot."""
    table, _ = load_table_with_policy(path)
    return table


def dump_store(store: TimeSeriesStore, directory: Union[str, Path]) -> Dict[str, int]:
    """Write every table of a store into ``directory`` (one file each)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = {}
    for name in store.table_names():
        written[name] = dump_table(store.table(name),
                                   directory / f"{name}.jsonl",
                                   policy=store.policy(name))
    return written


def load_store(directory: Union[str, Path]) -> TimeSeriesStore:
    """Reconstruct a store from a directory of table snapshots."""
    directory = Path(directory)
    store = TimeSeriesStore()
    for entry in sorted(os.listdir(directory)):
        if not entry.endswith(".jsonl"):
            continue
        table, policy = load_table_with_policy(directory / entry)
        store.install_table(table, policy)
    return store
