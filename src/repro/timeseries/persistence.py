"""Persistence: save/load the time-series store as JSON-lines snapshots.

The real SpotLake publishes its collected dataset for download; the
artifact ships pickled frames.  Here each table serializes to a compact
JSON-lines file (one line per series: dimensions, measure, change-point
arrays), which survives round-trips losslessly -- including the
observation counters that back the dedup statistics.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Union

from .record import SeriesKey
from .store import TimeSeriesStore
from .table import Table

#: Snapshot format version written into every file header.
FORMAT_VERSION = 1


def dump_table(table: Table, path: Union[str, Path]) -> int:
    """Write one table to a JSON-lines file; returns series written."""
    path = Path(path)
    count = 0
    with path.open("w", encoding="utf-8") as fh:
        header = {"format": FORMAT_VERSION, "table": table.name,
                  "records_written": table.stats.records_written}
        fh.write(json.dumps(header) + "\n")
        for key in table.series_keys():
            series = table.series(key)
            assert series is not None
            line = {
                "measure": key.measure_name,
                "dimensions": dict(key.dimensions),
                "times": series.times,
                "values": series.values,
                "observed_until": series.observed_until,
                "observations": series.observation_count,
            }
            fh.write(json.dumps(line) + "\n")
            count += 1
    return count


def load_table(path: Union[str, Path]) -> Table:
    """Reconstruct a table from a JSON-lines snapshot."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as fh:
        header = json.loads(fh.readline())
        if header.get("format") != FORMAT_VERSION:
            raise ValueError(f"unsupported snapshot format {header.get('format')!r}")
        table = Table(header["table"])
        for raw in fh:
            line = json.loads(raw)
            from .compression import ChangePointSeries
            series = ChangePointSeries(
                times=[float(t) for t in line["times"]],
                values=line["values"],
                observed_until=float(line["observed_until"]),
                observation_count=int(line["observations"]),
            )
            key = SeriesKey(line["measure"],
                            tuple(sorted(line["dimensions"].items())))
            # install the series with its indexes (and the generation /
            # latest-value views), bypassing re-ingestion
            table.install_series(key, series)
        table.stats.records_written = header["records_written"]
    return table


def dump_store(store: TimeSeriesStore, directory: Union[str, Path]) -> Dict[str, int]:
    """Write every table of a store into ``directory`` (one file each)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = {}
    for name in store.table_names():
        written[name] = dump_table(store.table(name),
                                   directory / f"{name}.jsonl")
    return written


def load_store(directory: Union[str, Path]) -> TimeSeriesStore:
    """Reconstruct a store from a directory of table snapshots."""
    directory = Path(directory)
    store = TimeSeriesStore()
    for entry in sorted(os.listdir(directory)):
        if not entry.endswith(".jsonl"):
            continue
        table = load_table(directory / entry)
        store._tables[table.name] = table
        from .store import RetentionPolicy
        store._policies[table.name] = RetentionPolicy()
    return store
