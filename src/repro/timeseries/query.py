"""Query layer over tables: filtered range reads, resampling, aggregation.

Provides the read operations SpotLake's serving layer and the paper's
analyses need: aligned resampled matrices for correlation work (Figure 8),
update-interval extraction (Figure 10), and grouped aggregates for the
heatmaps (Figures 3-5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .cache import QueryCache
from .record import Record, SeriesKey
from .table import Table


@dataclass(frozen=True)
class QuerySpec:
    """A declarative range query against one table."""

    measure_name: Optional[str] = None
    filters: Dict[str, str] = field(default_factory=dict)
    start: float = float("-inf")
    end: float = float("inf")

    def __post_init__(self):
        # NaN compares false against everything, so an explicit check is
        # needed -- a NaN bound would otherwise pass silently and match
        # nothing (or everything, depending on the comparison direction).
        if self.start != self.start or self.end != self.end:
            raise ValueError("query bounds must not be NaN")
        if self.end < self.start:
            raise ValueError("query end precedes start")


def run_query(table: Table, spec: QuerySpec,
              cache: Optional[QueryCache] = None) -> List[Record]:
    """Change-point records matching the spec, time-ordered.

    With a :class:`~.cache.QueryCache` over the same table, the read is
    memoized under the generation-stamp invalidation rule.
    """
    if cache is not None:
        return cache.scan(spec.measure_name, spec.filters or None,
                          spec.start, spec.end)
    return table.scan(spec.measure_name, spec.filters or None,
                      spec.start, spec.end)


def resample_matrix(table: Table, measure_name: str,
                    sample_times: Sequence[float],
                    filters: Optional[Dict[str, str]] = None,
                    ) -> Tuple[List[SeriesKey], np.ndarray]:
    """Aligned step-function samples: one row per series, one column per time.

    Values before a series' first observation are NaN.  Non-numeric series
    raise ``TypeError`` -- resampling is for numeric measures.
    """
    with table.lock:
        keys = table.series_keys(measure_name, filters)
        samples = np.asarray(list(sample_times), dtype="<f8")
        matrix = np.full((len(keys), samples.size), np.nan)
        for row, key in enumerate(keys):
            series = table.series(key)
            assert series is not None
            if not series.times:
                continue
            try:
                times, values = table.series_arrays(key)
            except TypeError:
                # mixed/string series: fall back to the row loop, which
                # raises only if a *sampled* value is actually a string
                # (matching the historical contract)
                for col, value in enumerate(series.resample(sample_times)):
                    if value is None:
                        continue
                    if isinstance(value, str):
                        raise TypeError(
                            f"series {key} holds strings; resample "
                            f"numeric measures only")
                    matrix[row, col] = float(value)
                continue
            idx = np.searchsorted(times, samples, side="right") - 1
            hit = idx >= 0
            if hit.any():
                matrix[row, hit] = values[idx[hit]]
    return keys, matrix


def update_intervals(table: Table, measure_name: str,
                     filters: Optional[Dict[str, str]] = None) -> List[float]:
    """Pooled elapsed-time-between-updates samples across matching series."""
    intervals: List[float] = []
    for key in table.series_keys(measure_name, filters):
        series = table.series(key)
        assert series is not None
        if len(series.times) > 1:
            # np.diff performs the identical b - a float subtractions the
            # pairwise list comprehension did, just without boxing each
            # operand; only the times are touched so string-valued series
            # keep working
            arr = np.asarray(series.times, dtype="<f8")
            intervals.extend(np.diff(arr).tolist())
    return intervals


def group_aggregate(table: Table, measure_name: str,
                    group_fn: Callable[[SeriesKey], Optional[str]],
                    sample_times: Sequence[float],
                    agg: Callable[[np.ndarray], float] = np.nanmean,
                    ) -> Dict[str, float]:
    """Aggregate resampled values per group label.

    ``group_fn`` maps a series to its group (None = exclude).  Used for the
    per-class / per-size / per-region means of Figures 3, 4, and 5.
    """
    keys, matrix = resample_matrix(table, measure_name, sample_times)
    buckets: Dict[str, List[np.ndarray]] = {}
    for row, key in enumerate(keys):
        label = group_fn(key)
        if label is None:
            continue
        buckets.setdefault(label, []).append(matrix[row])
    out: Dict[str, float] = {}
    for label, rows in buckets.items():
        stacked = np.vstack(rows)
        if np.all(np.isnan(stacked)):
            continue
        out[label] = float(agg(stacked))
    return out
