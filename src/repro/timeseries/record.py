"""Time-series record model.

Mirrors the shape of Amazon Timestream records as SpotLake uses them: a set
of string *dimensions* identifying the series (instance type, region,
zone, ...), a *measure name*, a numeric or string value, and a timestamp.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple, Union

Value = Union[float, int, str]

#: Canonical hashable form of a dimensions dict.
DimensionKey = Tuple[Tuple[str, str], ...]


def dimension_key(dimensions: Dict[str, str]) -> DimensionKey:
    """Canonical, hashable form of a dimensions mapping."""
    return tuple(sorted(dimensions.items()))


@dataclass(frozen=True)
class Record:
    """One observation of one measure of one series."""

    dimensions: DimensionKey
    measure_name: str
    value: Value
    time: float

    @classmethod
    def make(cls, dimensions: Dict[str, str], measure_name: str,
             value: Value, time: float) -> "Record":
        """Build a record from a plain dimensions dict."""
        if not measure_name:
            raise ValueError("measure_name must be non-empty")
        return cls(dimension_key(dimensions), measure_name, value, float(time))

    @property
    def dimension_dict(self) -> Dict[str, str]:
        return dict(self.dimensions)

    def matches(self, filters: Dict[str, str]) -> bool:
        """True when every filter key/value appears in the dimensions."""
        dims = self.dimension_dict
        return all(dims.get(k) == v for k, v in filters.items())


@dataclass(frozen=True)
class SeriesKey:
    """Identity of one time series: measure plus full dimension set."""

    measure_name: str
    dimensions: DimensionKey

    def __post_init__(self):
        # keys are hashed on every table/index lookup and on the storage
        # engine's dirty tracking; compute once instead of per operation
        object.__setattr__(
            self, "_hash",
            hash((self.measure_name, self.dimensions)))  # spotlint: disable=DET003 -- in-memory dict/set key, never persisted

    def __hash__(self) -> int:
        return self._hash

    @classmethod
    def of(cls, record: Record) -> "SeriesKey":
        return cls(record.measure_name, record.dimensions)

    @property
    def dimension_dict(self) -> Dict[str, str]:
        return dict(self.dimensions)

    def matches(self, filters: Dict[str, str]) -> bool:
        dims = self.dimension_dict
        return all(dims.get(k) == v for k, v in filters.items())
