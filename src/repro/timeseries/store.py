"""Multi-table time-series store with retention policies.

The store is the embedded stand-in for Amazon Timestream: named tables,
batched writes, per-table retention windows, and store-wide statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from .record import Record
from .table import Table


@dataclass
class RetentionPolicy:
    """Drop change points older than ``max_age_seconds`` (None = keep all)."""

    max_age_seconds: Optional[float] = None

    def cutoff(self, now: float) -> Optional[float]:
        if self.max_age_seconds is None:
            return None
        return now - self.max_age_seconds


class TimeSeriesStore:
    """A collection of named tables sharing one retention sweep."""

    def __init__(self):
        self._tables: Dict[str, Table] = {}
        self._policies: Dict[str, RetentionPolicy] = {}

    def create_table(self, name: str,
                     retention: Optional[RetentionPolicy] = None) -> Table:
        """Create (or return the existing) table called ``name``."""
        if name not in self._tables:
            self._tables[name] = Table(name)
            self._policies[name] = retention or RetentionPolicy()
        return self._tables[name]

    def install_table(self, table: Table,
                      policy: Optional[RetentionPolicy] = None) -> Table:
        """Adopt a pre-built table (snapshot load, engine recovery).

        Replaces any existing table of the same name along with its
        retention policy; ``policy=None`` installs the keep-all default.
        """
        self._tables[table.name] = table
        self._policies[table.name] = policy or RetentionPolicy()
        return table

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise KeyError(f"no table named {name!r}") from None

    def policy(self, name: str) -> RetentionPolicy:
        """The retention policy of table ``name``."""
        self.table(name)  # raise the canonical KeyError on unknown names
        return self._policies[name]

    def table_names(self) -> List[str]:
        return sorted(self._tables)

    def write(self, table_name: str, records: Iterable[Record]) -> int:
        """Batch write; the table must already exist."""
        return self.table(table_name).write_records(records)

    def apply_retention(self, now: float) -> Dict[str, int]:
        """Run the retention sweep; returns dropped counts per table."""
        dropped: Dict[str, int] = {}
        for name, table in self._tables.items():
            cutoff = self._policies[name].cutoff(now)
            if cutoff is not None:
                dropped[name] = table.evict_before(cutoff)
        return dropped

    def stats(self) -> Dict[str, dict]:
        """Ingestion statistics per table."""
        return {
            name: {
                "records_written": table.stats.records_written,
                "change_points_stored": table.stats.change_points_stored,
                "series": len(table),
                "dedup_ratio": table.stats.dedup_ratio,
            }
            for name, table in self._tables.items()
        }
