"""A Timestream-like table: many compressed series, queryable by dimensions.

The table indexes series by (measure name, dimension set) and additionally
keeps per-dimension inverted indexes so dimension-filter queries do not scan
every series.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from .compression import ChangePointSeries
from .record import DimensionKey, Record, SeriesKey, Value, dimension_key


@dataclass
class TableStats:
    """Ingestion/storage statistics for one table."""

    records_written: int = 0
    change_points_stored: int = 0
    series_count: int = 0

    @property
    def dedup_ratio(self) -> float:
        """Stored change points per written record (1.0 = no dedup win)."""
        if self.records_written == 0:
            return 1.0
        return self.change_points_stored / self.records_written


class Table:
    """One logical dataset (e.g. "sps", "advisor", "price").

    Thread-safety contract (ROADMAP item 1, the concurrent serving front
    end): every public mutator and reader serializes on :attr:`lock`, a
    reentrant per-table lock.  Collection writes and serving reads of one
    table therefore never observe torn series state, and the table's
    :class:`~repro.timeseries.cache.QueryCache` shares the *same* lock so
    a (generation stamp, scan result) pair is read atomically.  The lock
    is reentrant because cached "derived" reads re-enter ``scan`` while
    rendering rows.
    """

    def __init__(self, name: str):
        self.name = name
        #: per-table reentrant guard; shared with the table's query cache
        self.lock = threading.RLock()
        self._series: Dict[SeriesKey, ChangePointSeries] = {}
        # inverted index: (dim name, dim value) -> series keys
        self._index: Dict[Tuple[str, str], Set[SeriesKey]] = defaultdict(set)
        self._measures: Dict[str, Set[SeriesKey]] = defaultdict(set)
        self.stats = TableStats()
        # -- generation stamps (read-cache invalidation) ----------------------
        # ``generation`` counts every query-visible mutation (a change-point
        # write or an eviction).  Per-series / per-measure / per-dimension-item
        # maps record the generation that last touched them, letting
        # ``generation_stamp`` answer "could a write since stamp G overlap
        # this query?" in O(#constraints).
        self.generation: int = 0
        self._series_gen: Dict[SeriesKey, int] = {}
        self._measure_gen: Dict[str, int] = {}
        self._dim_gen: Dict[Tuple[str, str], int] = {}
        # materialized latest-value view: last change point per series
        self._latest: Dict[SeriesKey, Record] = {}
        # packed per-series float64 views for vectorized reads, keyed by
        # the series generation that built them (see series_arrays)
        self._views: Dict[SeriesKey, Tuple[int, np.ndarray, np.ndarray]] = {}
        #: generation of the most recent eviction (0 = never evicted).
        #: Rollup consumers compare it against their snapshot generation:
        #: an eviction can *remove* history a pure append never can, so
        #: incremental "recompute only the frontier" shortcuts are valid
        #: only when no eviction happened since the snapshot.
        self.eviction_generation: int = 0

    # -- writes ---------------------------------------------------------------

    def _touch(self, key: SeriesKey) -> None:
        """Stamp a query-visible mutation of ``key`` onto the gen indexes."""
        self.generation += 1
        gen = self.generation
        self._series_gen[key] = gen
        self._measure_gen[key.measure_name] = gen
        for dim in key.dimensions:
            self._dim_gen[dim] = gen

    def write(self, record: Record) -> bool:
        """Ingest one record; returns True when it created a change point."""
        with self.lock:
            key = SeriesKey.of(record)
            series = self._series.get(key)
            if series is None:
                series = ChangePointSeries()
                self._series[key] = series
                self._measures[record.measure_name].add(key)
                for dim in record.dimensions:
                    self._index[dim].add(key)
                self.stats.series_count += 1
            changed = series.append(record.time, record.value)
            self.stats.records_written += 1
            if changed:
                self.stats.change_points_stored += 1
                self._latest[key] = Record(key.dimensions, key.measure_name,
                                           record.value, record.time)
                self._touch(key)
            return changed

    def install_series(self, key: SeriesKey, series: ChangePointSeries) -> None:
        """Install a pre-built series (snapshot load), indexes and the
        materialized views included, without re-ingesting records."""
        with self.lock:
            self._series[key] = series
            self._measures[key.measure_name].add(key)
            for dim in key.dimensions:
                self._index[dim].add(key)
            self.stats.series_count += 1
            self.stats.change_points_stored += len(series)
            if series.times:
                self._latest[key] = Record(key.dimensions, key.measure_name,
                                           series.values[-1], series.times[-1])
            self._touch(key)

    def append_point(self, key: SeriesKey, time: float, value: Value) -> bool:
        """Ingest one point addressed by a pre-built :class:`SeriesKey`.

        Semantically identical to :meth:`write`, minus constructing a
        :class:`Record` and re-deriving its key per point -- batch writers
        that reuse keys across rounds (every series gets one point per
        collection round) skip that allocation entirely.
        """
        with self.lock:
            series = self._series.get(key)
            if series is None:
                series = ChangePointSeries()
                self._series[key] = series
                self._measures[key.measure_name].add(key)
                for dim in key.dimensions:
                    self._index[dim].add(key)
                self.stats.series_count += 1
            changed = series.append(time, value)
            self.stats.records_written += 1
            if changed:
                self.stats.change_points_stored += 1
                self._latest[key] = Record(key.dimensions, key.measure_name,
                                           value, time)
                self._touch(key)
            return changed

    def append_many(self,
                    points: Iterable[Tuple[SeriesKey, float, Value]]) -> int:
        """Bulk ingest of (key, time, value) points.

        Returns the number of change points created.  Equivalent to
        calling :meth:`append_point` per point, in order -- same series
        state, same stats, same generation stamps, same latest-value
        view -- with the per-point lookups and method dispatches hoisted
        out of the loop.  The change-point test mirrors
        :meth:`ChangePointSeries.append` and the stamp bump mirrors
        :meth:`_touch`; the latest-value :class:`Record` is materialized
        once per touched series after the loop (only the last change
        point per key survives the batch anyway).
        """
        with self.lock:
            series_map = self._series
            series_gen = self._series_gen
            measure_gen = self._measure_gen
            dim_gen = self._dim_gen
            gen = self.generation
            stats = self.stats
            # last change point per key, materialized into _latest at the end
            pending: Dict[SeriesKey, Tuple[float, Value]] = {}
            written = 0
            changed = 0
            for key, time, value in points:
                written += 1
                series = series_map.get(key)
                if series is None:
                    series = ChangePointSeries()
                    series_map[key] = series
                    self._measures[key.measure_name].add(key)
                    for dim in key.dimensions:
                        self._index[dim].add(key)
                    stats.series_count += 1
                # inlined ChangePointSeries.append
                if time < series.observed_until:
                    raise ValueError(
                        f"out-of-order append: {time} < {series.observed_until}")
                series.observed_until = time
                series.observation_count += 1
                values = series.values
                # inlined values_equal (type-and-NaN-aware dedup)
                if values:
                    last = values[-1]
                    if type(last) is type(value) and (
                            last == value or (last != last and value != value)):
                        continue
                series.times.append(time)
                values.append(value)
                changed += 1
                pending[key] = (time, value)
                # inlined _touch
                gen += 1
                series_gen[key] = gen
                measure_gen[key.measure_name] = gen
                for dim in key.dimensions:
                    dim_gen[dim] = gen
            self.generation = gen
            latest = self._latest
            for key, (time, value) in pending.items():
                latest[key] = Record(key.dimensions, key.measure_name,
                                     value, time)
            stats.records_written += written
            stats.change_points_stored += changed
            return changed

    def write_records(self, records: Iterable[Record]) -> int:
        """Batch ingest; returns the number of change points created."""
        return sum(1 for r in records if self.write(r))

    # -- series lookup -----------------------------------------------------------

    def series_keys(self, measure_name: Optional[str] = None,
                    filters: Optional[Dict[str, str]] = None) -> List[SeriesKey]:
        """Series matching a measure and/or dimension filters."""
        with self.lock:
            candidates: Optional[Set[SeriesKey]] = None
            if measure_name is not None:
                candidates = set(self._measures.get(measure_name, set()))
            if filters:
                for item in filters.items():
                    indexed = self._index.get(item, set())
                    candidates = set(indexed) if candidates is None else candidates & indexed
            if candidates is None:
                candidates = set(self._series)
            return sorted(candidates,
                          key=lambda k: (k.measure_name, k.dimensions))

    def series(self, key: SeriesKey) -> Optional[ChangePointSeries]:
        return self._series.get(key)

    def series_arrays(self, key: SeriesKey
                      ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Packed float64 (times, values) view of one series.

        The view is cached and revalidated against the series generation
        stamp -- any change-point write or eviction of the series bumps
        its generation and the next call rebuilds the arrays, so callers
        always see current data without paying the list->array conversion
        per read.  Series holding non-numeric values raise ``TypeError``
        (vectorized analytics is defined over the float64 domain).
        Returned arrays are shared; callers must not mutate them.
        """
        with self.lock:
            series = self._series.get(key)
            if series is None:
                return None
            gen = self._series_gen.get(key, 0)
            cached = self._views.get(key)
            if cached is not None and cached[0] == gen:
                return cached[1], cached[2]
            times = np.asarray(series.times, dtype="<f8")
            try:
                values = np.asarray(series.values, dtype="<f8")
            except (TypeError, ValueError):
                raise TypeError(
                    f"series {key} holds non-numeric values; vectorized "
                    f"reads need a numeric measure") from None
            self._views[key] = (gen, times, values)
            return times, values

    def __len__(self) -> int:
        return len(self._series)

    # -- generation stamps ---------------------------------------------------

    def series_generation(self, key: SeriesKey) -> int:
        """Generation of the last mutation of one series (0 = never)."""
        with self.lock:
            return self._series_gen.get(key, 0)

    def generation_stamp(self, measure_name: Optional[str] = None,
                         filters: Optional[Dict[str, str]] = None) -> int:
        """Conservative freshness stamp for a (measure, filters) query.

        A write that *overlaps* the query (its series matches the measure
        and every filter item) bumps all of the query's constraint
        generations at once, so the minimum over them strictly increases --
        a cached result is stale exactly when its stamp differs.  Writes
        that overlap no constraint leave the stamp unchanged; writes
        sharing only some constraints may bump it spuriously (conservative
        invalidation, never stale data).
        """
        with self.lock:
            constraints: List[int] = []
            if measure_name is not None:
                constraints.append(self._measure_gen.get(measure_name, 0))
            if filters:
                for item in filters.items():
                    constraints.append(self._dim_gen.get(item, 0))
            if not constraints:
                return self.generation
            return min(constraints)

    # -- reads -----------------------------------------------------------------

    def value_at(self, measure_name: str, dimensions: Dict[str, str],
                 time: float) -> Optional[Value]:
        """Point lookup of the value in force at ``time``."""
        with self.lock:
            key = SeriesKey(measure_name, dimension_key(dimensions))
            series = self._series.get(key)
            return series.value_at(time) if series else None

    def latest(self, measure_name: str,
               filters: Optional[Dict[str, str]] = None) -> List[Record]:
        """Last observed value of every matching series.

        Served from the materialized latest-value view: no series walk.
        """
        with self.lock:
            out: List[Record] = []
            for key in self.series_keys(measure_name, filters):
                record = self._latest.get(key)
                if record is not None:
                    out.append(record)
            return out

    def scan(self, measure_name: Optional[str] = None,
             filters: Optional[Dict[str, str]] = None,
             start: float = float("-inf"),
             end: float = float("inf")) -> List[Record]:
        """All change-point records in [start, end], time-ordered."""
        with self.lock:
            out: List[Record] = []
            for key in self.series_keys(measure_name, filters):
                for t, v in self._series[key].change_points(start, end):
                    out.append(Record(key.dimensions, key.measure_name, v, t))
            out.sort(key=lambda r: r.time)
            return out

    # -- retention -----------------------------------------------------------------

    def evict_before(self, cutoff: float) -> int:
        """Drop change points strictly before ``cutoff``.

        The last change point at or before the cutoff is retained (its value
        is still in force), matching tiered-retention semantics.  Returns
        the number of change points dropped.
        """
        with self.lock:
            dropped = 0
            for key, series in self._series.items():
                # index of the last change point at or before the cutoff:
                # that point stays (its value is in force), everything
                # earlier goes.
                keep_from = bisect_right(series.times, cutoff) - 1
                if keep_from > 0:
                    dropped += keep_from
                    del series.times[:keep_from]
                    del series.values[:keep_from]
                    self._touch(key)
            if dropped:
                self.eviction_generation = self.generation
            self.stats.change_points_stored -= dropped
            assert self.stats.change_points_stored == \
                sum(len(s) for s in self._series.values())
            return dropped
