"""A Timestream-like table: many compressed series, queryable by dimensions.

The table indexes series by (measure name, dimension set) and additionally
keeps per-dimension inverted indexes so dimension-filter queries do not scan
every series.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .compression import ChangePointSeries
from .record import DimensionKey, Record, SeriesKey, Value, dimension_key


@dataclass
class TableStats:
    """Ingestion/storage statistics for one table."""

    records_written: int = 0
    change_points_stored: int = 0
    series_count: int = 0

    @property
    def dedup_ratio(self) -> float:
        """Stored change points per written record (1.0 = no dedup win)."""
        if self.records_written == 0:
            return 1.0
        return self.change_points_stored / self.records_written


class Table:
    """One logical dataset (e.g. "sps", "advisor", "price")."""

    def __init__(self, name: str):
        self.name = name
        self._series: Dict[SeriesKey, ChangePointSeries] = {}
        # inverted index: (dim name, dim value) -> series keys
        self._index: Dict[Tuple[str, str], Set[SeriesKey]] = defaultdict(set)
        self._measures: Dict[str, Set[SeriesKey]] = defaultdict(set)
        self.stats = TableStats()

    # -- writes ---------------------------------------------------------------

    def write(self, record: Record) -> bool:
        """Ingest one record; returns True when it created a change point."""
        key = SeriesKey.of(record)
        series = self._series.get(key)
        if series is None:
            series = ChangePointSeries()
            self._series[key] = series
            self._measures[record.measure_name].add(key)
            for dim in record.dimensions:
                self._index[dim].add(key)
            self.stats.series_count += 1
        changed = series.append(record.time, record.value)
        self.stats.records_written += 1
        if changed:
            self.stats.change_points_stored += 1
        return changed

    def write_records(self, records: Iterable[Record]) -> int:
        """Batch ingest; returns the number of change points created."""
        return sum(1 for r in records if self.write(r))

    # -- series lookup -----------------------------------------------------------

    def series_keys(self, measure_name: Optional[str] = None,
                    filters: Optional[Dict[str, str]] = None) -> List[SeriesKey]:
        """Series matching a measure and/or dimension filters."""
        candidates: Optional[Set[SeriesKey]] = None
        if measure_name is not None:
            candidates = set(self._measures.get(measure_name, set()))
        if filters:
            for item in filters.items():
                indexed = self._index.get(item, set())
                candidates = set(indexed) if candidates is None else candidates & indexed
        if candidates is None:
            candidates = set(self._series)
        return sorted(candidates, key=lambda k: (k.measure_name, k.dimensions))

    def series(self, key: SeriesKey) -> Optional[ChangePointSeries]:
        return self._series.get(key)

    def __len__(self) -> int:
        return len(self._series)

    # -- reads -----------------------------------------------------------------

    def value_at(self, measure_name: str, dimensions: Dict[str, str],
                 time: float) -> Optional[Value]:
        """Point lookup of the value in force at ``time``."""
        key = SeriesKey(measure_name, dimension_key(dimensions))
        series = self._series.get(key)
        return series.value_at(time) if series else None

    def latest(self, measure_name: str,
               filters: Optional[Dict[str, str]] = None) -> List[Record]:
        """Last observed value of every matching series."""
        out: List[Record] = []
        for key in self.series_keys(measure_name, filters):
            series = self._series[key]
            if not series.is_empty:
                out.append(Record(key.dimensions, key.measure_name,
                                  series.values[-1], series.times[-1]))
        return out

    def scan(self, measure_name: Optional[str] = None,
             filters: Optional[Dict[str, str]] = None,
             start: float = float("-inf"),
             end: float = float("inf")) -> List[Record]:
        """All change-point records in [start, end], time-ordered."""
        out: List[Record] = []
        for key in self.series_keys(measure_name, filters):
            for t, v in self._series[key].change_points(start, end):
                out.append(Record(key.dimensions, key.measure_name, v, t))
        out.sort(key=lambda r: r.time)
        return out

    # -- retention -----------------------------------------------------------------

    def evict_before(self, cutoff: float) -> int:
        """Drop change points strictly before ``cutoff``.

        The last change point at or before the cutoff is retained (its value
        is still in force), matching tiered-retention semantics.  Returns
        the number of change points dropped.
        """
        dropped = 0
        for series in self._series.values():
            keep_from = 0
            for i, t in enumerate(series.times):
                if t < cutoff:
                    keep_from = i
                else:
                    break
            if keep_from > 0:
                dropped += keep_from
                del series.times[:keep_from]
                del series.values[:keep_from]
        self.stats.change_points_stored -= dropped
        return dropped
