"""Vectorized aggregation kernels for change-point series.

This module is the computational heart of the analytics pushdown: a
declarative :class:`AggSpec` describes *what* to aggregate (measure,
filters, time window, bucket width, group-by dimensions, aggregate
functions) and the kernels here compute it from flat decoded columns --
``(times, values, series-index)`` arrays -- without ever touching a
Python row loop.  The same kernels serve all three tiers:

* **cold** -- columns come from ``SegmentCursor.scan_columns`` via the
  lake's partition assembly;
* **hot** -- columns are packed per-series float64 views cached on
  ``Table`` and invalidated by the existing generation stamps;
* **federated** -- each tier produces a :class:`Partials` block and
  :func:`merge_partials` combines them exactly (count/sum/min/max merge
  directly; mean/std via the (n, Σ, Σ²) decomposition; update intervals
  get the cross-tier seam added at merge time).

Everything is deterministic: reductions use ``np.bincount`` /
``np.add.at`` (sequential, index-order accumulation -- the same float
association a left-to-right Python loop produces), ``last`` resolves ties
by canonical series order, and the step-function time-weighted mean is an
exact integral of the reconstructed step series over each bucket.

The module is a leaf like the rest of ``timeseries``: it knows nothing
about storage, the lake or serving.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .record import SeriesKey
from .table import Table

_NEG_INF = float("-inf")
_POS_INF = float("inf")

#: Aggregate functions an :class:`AggSpec` may request.
AGGREGATES = ("count", "min", "max", "mean", "sum", "std", "last",
              "change_count", "mean_interval", "twa_mean")

#: Aggregates that need the step-integral (area, cover) partials.
_TWA_AGGREGATES = ("twa_mean",)


@dataclass(frozen=True)
class AggSpec:
    """A declarative bucketed group-by aggregation over one measure.

    ``bucket_seconds`` of ``None`` means a single bucket spanning the
    whole ``[start, end]`` window.  ``group_by`` names dimensions of the
    series keys; series missing a group-by dimension are excluded from
    the result (they have no coordinate on the group axis).  ``filters``
    is an exact-match dimension constraint, identical in meaning to the
    ``Table.scan`` filters.
    """

    table: str
    measure: str
    start: float
    end: float
    bucket_seconds: Optional[float] = None
    group_by: Tuple[str, ...] = ()
    aggregates: Tuple[str, ...] = ("mean", "count")
    filters: Tuple[Tuple[str, str], ...] = ()

    def __post_init__(self):
        if not math.isfinite(self.start) or not math.isfinite(self.end):
            raise ValueError("AggSpec window must be finite")
        if self.end < self.start:
            raise ValueError(
                f"AggSpec window is inverted: {self.end} < {self.start}")
        if self.bucket_seconds is not None and \
                not (self.bucket_seconds > 0
                     and math.isfinite(self.bucket_seconds)):
            raise ValueError("bucket_seconds must be positive and finite")
        unknown = [a for a in self.aggregates if a not in AGGREGATES]
        if unknown:
            raise ValueError(f"unknown aggregates: {unknown}")
        if not self.aggregates:
            raise ValueError("AggSpec needs at least one aggregate")

    @classmethod
    def make(cls, table: str, measure: str, start: float, end: float,
             bucket_seconds: Optional[float] = None,
             group_by: Sequence[str] = (),
             aggregates: Sequence[str] = ("mean", "count"),
             filters: Optional[Dict[str, str]] = None) -> "AggSpec":
        """Build a spec from unordered/dict-style arguments."""
        return cls(table=table, measure=measure, start=float(start),
                   end=float(end),
                   bucket_seconds=(None if bucket_seconds is None
                                   else float(bucket_seconds)),
                   group_by=tuple(group_by),
                   aggregates=tuple(aggregates),
                   filters=tuple(sorted((filters or {}).items())))

    @property
    def wants_twa(self) -> bool:
        return any(a in _TWA_AGGREGATES for a in self.aggregates)


def bucket_edges(start: float, end: float,
                 bucket_seconds: Optional[float]) -> np.ndarray:
    """Bucket boundary instants for a window (inclusive of both ends).

    The last bucket is clamped to ``end`` (it may be shorter than the
    nominal width); ``bucket_seconds=None`` yields one bucket.
    """
    if bucket_seconds is None or end <= start:
        return np.asarray([start, end], dtype="<f8")
    n = int(math.ceil((end - start) / bucket_seconds))
    n = max(n, 1)
    edges = start + bucket_seconds * np.arange(n + 1, dtype="<f8")
    edges[-1] = min(float(edges[-1]), end)
    # float accumulation can land the penultimate edge past a clamped
    # end; monotonicity is required by searchsorted
    return np.maximum.accumulate(np.minimum(edges, end))


def bucket_index(edges: np.ndarray, times: np.ndarray) -> np.ndarray:
    """Bucket subscript per instant; window-end instants land in the
    last bucket (the window is closed on the right)."""
    idx = np.searchsorted(edges, times, side="right") - 1
    return np.clip(idx, 0, len(edges) - 2)


@dataclass
class TierColumns:
    """Flat decoded change-row columns for one tier of one spec.

    ``counts[i]`` rows of ``times``/``values`` belong to the i-th series
    of the caller's universe, series-major and time-sorted within each
    series.  ``base_values``/``has_base`` carry the value in force just
    before the tier window (the predecessor a first in-window row is
    compared against for change counting and the step integral).
    """

    counts: np.ndarray          # int64, one per universe series
    times: np.ndarray           # float64, flat
    values: np.ndarray          # float64, flat
    base_values: np.ndarray     # float64, NaN when absent
    has_base: np.ndarray        # bool

    @classmethod
    def empty(cls, n_series: int) -> "TierColumns":
        return cls(counts=np.zeros(n_series, dtype=np.int64),
                   times=np.empty(0, dtype="<f8"),
                   values=np.empty(0, dtype="<f8"),
                   base_values=np.full(n_series, np.nan),
                   has_base=np.zeros(n_series, dtype=bool))


def gather_table_columns(table: Table, keys: Sequence[SeriesKey],
                         lo: float, end: float,
                         include_lo: bool) -> TierColumns:
    """Hot-tier columns from a table's packed per-series views.

    Selects rows in ``[lo, end]`` (or ``(lo, end]`` when ``include_lo``
    is false -- the federated hot side, which starts strictly after the
    eviction boundary) with two ``searchsorted`` probes per series; the
    row just before the cut becomes the tier baseline.  Callers must
    hold the table lock across the whole gather so the snapshot is
    consistent.
    """
    n = len(keys)
    cols = TierColumns.empty(n)
    t_parts: List[np.ndarray] = []
    v_parts: List[np.ndarray] = []
    for i, key in enumerate(keys):
        arrays = table.series_arrays(key)
        if arrays is None:
            continue
        times, values = arrays
        lo_i = int(np.searchsorted(times, lo,
                                   side="left" if include_lo else "right"))
        hi_i = int(np.searchsorted(times, end, side="right"))
        if lo_i > 0:
            cols.has_base[i] = True
            cols.base_values[i] = values[lo_i - 1]
        if hi_i > lo_i:
            cols.counts[i] = hi_i - lo_i
            t_parts.append(times[lo_i:hi_i])
            v_parts.append(values[lo_i:hi_i])
    if t_parts:
        cols.times = np.concatenate(t_parts)
        cols.values = np.concatenate(v_parts)
    return cols


# -- partial aggregates ----------------------------------------------------

#: Field order of a packed per-series scalar partial (see
#: :func:`series_window_partial`); ``first_time`` rides along because a
#: scalar partial covers exactly one bucket, so its cell-level last_time
#: doubles as the series-level one but first_time has no cell slot.
PARTIAL_FIELDS = ("count", "vsum", "vsumsq", "vmin", "vmax", "last_time",
                  "last_value", "changes", "ivl_sum", "ivl_count",
                  "area", "cover", "first_time")

_PF = {name: i for i, name in enumerate(PARTIAL_FIELDS)}


@dataclass
class Partials:
    """Mergeable partial aggregates on a (group × bucket) cell grid.

    All cell arrays are flat of length ``n_groups * n_buckets`` (cell =
    ``group * n_buckets + bucket``).  ``series_first_time`` /
    ``series_last_time`` are per-*series* (NaN when the tier holds no
    rows for that series); they exist so :func:`merge_partials` can add
    the cross-tier update interval that neither tier sees locally.
    """

    n_groups: int
    n_buckets: int
    count: np.ndarray
    vsum: np.ndarray
    vsumsq: np.ndarray
    vmin: np.ndarray
    vmax: np.ndarray
    last_time: np.ndarray
    last_value: np.ndarray
    changes: np.ndarray
    ivl_sum: np.ndarray
    ivl_count: np.ndarray
    area: np.ndarray
    cover: np.ndarray
    series_first_time: np.ndarray = field(default=None)  # type: ignore
    series_last_time: np.ndarray = field(default=None)   # type: ignore

    @classmethod
    def zeros(cls, n_groups: int, n_buckets: int,
              n_series: int) -> "Partials":
        cells = n_groups * n_buckets
        return cls(
            n_groups=n_groups, n_buckets=n_buckets,
            count=np.zeros(cells, dtype=np.int64),
            vsum=np.zeros(cells), vsumsq=np.zeros(cells),
            vmin=np.full(cells, _POS_INF), vmax=np.full(cells, _NEG_INF),
            last_time=np.full(cells, _NEG_INF),
            last_value=np.full(cells, np.nan),
            changes=np.zeros(cells, dtype=np.int64),
            ivl_sum=np.zeros(cells),
            ivl_count=np.zeros(cells, dtype=np.int64),
            area=np.zeros(cells), cover=np.zeros(cells),
            series_first_time=np.full(n_series, np.nan),
            series_last_time=np.full(n_series, np.nan))


def compute_partials(cols: TierColumns, group_of_series: np.ndarray,
                     n_groups: int, edges: np.ndarray,
                     cover_start: float, cover_end: float,
                     want_twa: bool) -> Partials:
    """Aggregate one tier's flat columns into cell partials.

    ``group_of_series[i]`` is the group subscript of universe series i
    (``-1`` excludes the series).  ``cover_start``/``cover_end`` bound
    the tier's *observation* window for the step integral -- they may be
    narrower than the bucket grid when the tier covers only part of the
    query window (the federated split).

    Accumulation order is series-major row order via sequential
    ``np.bincount`` / ``np.add.at``, i.e. bit-identical to a Python loop
    over the same rows in the same order.
    """
    counts = cols.counts
    n_series = counts.size
    nb = len(edges) - 1
    cells = n_groups * nb
    part = Partials.zeros(n_groups, nb, n_series)
    times, values = cols.times, cols.values
    n = times.size

    starts = np.zeros(n_series, dtype=np.int64)
    if n_series > 1:
        starts[1:] = np.cumsum(counts)[:-1]
    nonzero = counts > 0
    if n:
        part.series_first_time[nonzero] = times[starts[nonzero]]
        part.series_last_time[nonzero] = \
            times[starts[nonzero] + counts[nonzero] - 1]

        sidx = np.repeat(np.arange(n_series), counts)
        g_row = group_of_series[sidx]
        valid = g_row >= 0
        bucket = bucket_index(edges, times)
        cell = g_row * nb + bucket

        is_first = np.zeros(n, dtype=bool)
        is_first[starts[nonzero]] = True
        has_prev = np.ones(n, dtype=bool)
        has_prev[is_first] = cols.has_base[sidx[is_first]]

        vcell = cell[valid]
        vvals = values[valid]
        part.count += np.bincount(vcell, minlength=cells).astype(np.int64)
        part.vsum += np.bincount(vcell, weights=vvals, minlength=cells)
        part.vsumsq += np.bincount(vcell, weights=vvals * vvals,
                                   minlength=cells)
        np.minimum.at(part.vmin, vcell, vvals)
        np.maximum.at(part.vmax, vcell, vvals)

        chg = valid & has_prev
        part.changes += np.bincount(cell[chg], minlength=cells
                                    ).astype(np.int64)

        within = valid & ~is_first
        if within.any():
            prev_t = np.empty(n)
            prev_t[0] = 0.0
            prev_t[1:] = times[:-1]
            gaps = times[within] - prev_t[within]
            part.ivl_sum += np.bincount(cell[within], weights=gaps,
                                        minlength=cells)
            part.ivl_count += np.bincount(cell[within], minlength=cells
                                          ).astype(np.int64)

        # "last" per cell: the row maximizing (time, series order).  Sort
        # ranks once, take the max rank per cell, gather through the sort.
        order = np.lexsort((sidx[valid], times[valid]))
        rank_of = np.empty(order.size, dtype=np.int64)
        rank_of[order] = np.arange(order.size)
        best = np.full(cells, -1, dtype=np.int64)
        np.maximum.at(best, vcell, rank_of)
        hit = best >= 0
        src = order[best[hit]]
        part.last_time[hit] = times[valid][src]
        part.last_value[hit] = vvals[src]

    if want_twa:
        _accumulate_step_integral(part, cols, group_of_series, edges,
                                  cover_start, cover_end, starts)
    return part


def _accumulate_step_integral(part: Partials, cols: TierColumns,
                              group_of_series: np.ndarray,
                              edges: np.ndarray, cover_start: float,
                              cover_end: float,
                              starts: np.ndarray) -> None:
    """Exact per-bucket integral of each series' step function.

    For each series the step function is reconstructed from the tier
    baseline (value in force at ``cover_start``) plus its in-window
    change rows; the cumulative integral is evaluated at the bucket
    edges clipped to the observed span, giving per-bucket area and
    covered duration.  One short numpy pass per series -- the only
    per-series Python iteration in the engine, and it runs only when a
    time-weighted aggregate was requested.
    """
    nb = len(edges) - 1
    ce = cover_end
    for s in range(cols.counts.size):
        g = int(group_of_series[s])
        if g < 0:
            continue
        cnt = int(cols.counts[s])
        lo = int(starts[s])
        t = cols.times[lo:lo + cnt]
        v = cols.values[lo:lo + cnt]
        if cols.has_base[s]:
            k = np.concatenate(([cover_start], t))
            u = np.concatenate(([cols.base_values[s]], v))
        else:
            k, u = t, v
        if k.size == 0 or k[0] >= ce:
            continue
        prefix = np.concatenate(([0.0], np.cumsum(u[:-1] * np.diff(k))))
        pts = np.clip(edges, k[0], ce)
        j = np.searchsorted(k, pts, side="right") - 1
        integral = prefix[j] + u[j] * (pts - k[j])
        cell0 = g * nb
        part.area[cell0:cell0 + nb] += integral[1:] - integral[:-1]
        part.cover[cell0:cell0 + nb] += pts[1:] - pts[:-1]


def merge_partials(a: Partials, b: Partials, group_of_series: np.ndarray,
                   edges: np.ndarray) -> Partials:
    """Exact merge of two time-adjacent partials (``a`` strictly earlier).

    Counts, sums, Σ², change counts, intervals, areas and cover add;
    min/max take elementwise extrema; ``last`` comes from ``b`` wherever
    ``b`` saw any row.  The one cross-tier term neither side computed
    locally is the update interval spanning the seam: for every series
    with rows on both sides it is ``b.first - a.last``, attributed to
    the bucket of ``b``'s first row (the convention used everywhere:
    an interval belongs to the bucket of its later endpoint).
    """
    nb = a.n_buckets
    out = Partials.zeros(a.n_groups, nb, a.series_first_time.size)
    out.count = a.count + b.count
    out.vsum = a.vsum + b.vsum
    out.vsumsq = a.vsumsq + b.vsumsq
    out.vmin = np.minimum(a.vmin, b.vmin)
    out.vmax = np.maximum(a.vmax, b.vmax)
    take_b = b.last_time > _NEG_INF
    out.last_time = np.where(take_b, b.last_time, a.last_time)
    out.last_value = np.where(take_b, b.last_value, a.last_value)
    out.changes = a.changes + b.changes
    out.ivl_sum = a.ivl_sum + b.ivl_sum
    out.ivl_count = a.ivl_count + b.ivl_count
    out.area = a.area + b.area
    out.cover = a.cover + b.cover

    seam = (~np.isnan(a.series_last_time)
            & ~np.isnan(b.series_first_time)
            & (group_of_series >= 0))
    if seam.any():
        first_b = b.series_first_time[seam]
        cell = group_of_series[seam] * nb + bucket_index(edges, first_b)
        np.add.at(out.ivl_sum, cell, first_b - a.series_last_time[seam])
        np.add.at(out.ivl_count, cell, 1)

    out.series_first_time = np.where(~np.isnan(a.series_first_time),
                                     a.series_first_time,
                                     b.series_first_time)
    out.series_last_time = np.where(~np.isnan(b.series_last_time),
                                    b.series_last_time, a.series_last_time)
    return out


# -- per-series scalar partials (the rollup cache unit) --------------------

def series_window_partial(times: np.ndarray, values: np.ndarray,
                          w_start: float, w_end: float,
                          end_inclusive: bool) -> np.ndarray:
    """Scalar partial of one series over ``[w_start, w_end)`` (or
    ``[w_start, w_end]`` when ``end_inclusive``).

    ``times``/``values`` are the series' *full* packed arrays; the
    window is cut with two bisects.  Packed per :data:`PARTIAL_FIELDS`,
    this is what the rollup cache stores per series per day.
    """
    out = np.zeros(len(PARTIAL_FIELDS))
    lo = int(np.searchsorted(times, w_start, side="left"))
    hi = int(np.searchsorted(times, w_end,
                             side="right" if end_inclusive else "left"))
    seg_t = times[lo:hi]
    seg_v = values[lo:hi]
    cnt = hi - lo
    out[_PF["count"]] = cnt
    has_base = lo > 0
    if cnt:
        out[_PF["vsum"]] = float(np.sum(seg_v))
        out[_PF["vsumsq"]] = float(np.sum(seg_v * seg_v))
        out[_PF["vmin"]] = float(np.min(seg_v))
        out[_PF["vmax"]] = float(np.max(seg_v))
        out[_PF["last_time"]] = float(seg_t[-1])
        out[_PF["last_value"]] = float(seg_v[-1])
        out[_PF["first_time"]] = float(seg_t[0])
        out[_PF["changes"]] = cnt if has_base else cnt - 1
        if cnt > 1:
            gaps = np.diff(seg_t)
            out[_PF["ivl_sum"]] = float(np.sum(gaps))
            out[_PF["ivl_count"]] = cnt - 1
    else:
        out[_PF["vmin"]] = _POS_INF
        out[_PF["vmax"]] = _NEG_INF
        out[_PF["last_time"]] = _NEG_INF
        out[_PF["last_value"]] = np.nan
        out[_PF["first_time"]] = np.nan

    if has_base:
        k = np.concatenate(([w_start], seg_t))
        u = np.concatenate(([values[lo - 1]], seg_v))
    else:
        k, u = seg_t, seg_v
    if k.size and k[0] < w_end:
        span = np.concatenate((k, [w_end]))
        out[_PF["area"]] = float(np.sum(u * np.diff(span)))
        out[_PF["cover"]] = w_end - float(k[0])
    return out


def lift_series_partials(matrix: np.ndarray, bucket_of_series: np.ndarray,
                         group_of_series: np.ndarray, n_groups: int,
                         edges: np.ndarray) -> Partials:
    """Lift per-series scalar partials onto the (group × bucket) grid.

    ``matrix`` is (n_series × len(PARTIAL_FIELDS)); every series' scalar
    partial lands whole in ``bucket_of_series[s]`` (the caller guarantees
    the scalar window nests inside that bucket -- day rollups on a
    day-multiple grid).  Accumulation across series sharing a cell is
    sequential in series order, matching :func:`compute_partials`.
    """
    n_series = matrix.shape[0]
    nb = len(edges) - 1
    part = Partials.zeros(n_groups, nb, n_series)
    present = matrix[:, _PF["count"]] > 0
    grouped = group_of_series >= 0
    live = grouped & (present | (matrix[:, _PF["cover"]] > 0))
    cell = group_of_series * nb + bucket_of_series
    lc = cell[live]

    def add(field_name: str, target: np.ndarray, integer: bool = False):
        col = matrix[live, _PF[field_name]]
        np.add.at(target, lc, col.astype(np.int64) if integer else col)

    add("count", part.count, integer=True)
    add("vsum", part.vsum)
    add("vsumsq", part.vsumsq)
    add("changes", part.changes, integer=True)
    add("ivl_sum", part.ivl_sum)
    add("ivl_count", part.ivl_count, integer=True)
    add("area", part.area)
    add("cover", part.cover)
    np.minimum.at(part.vmin, lc, matrix[live, _PF["vmin"]])
    np.maximum.at(part.vmax, lc, matrix[live, _PF["vmax"]])

    # last per cell: later (time, series order) wins; assign ascending so
    # the winner overwrites
    rowed = grouped & present
    rows = np.nonzero(rowed)[0]
    if rows.size:
        lt = matrix[rows, _PF["last_time"]]
        order = np.lexsort((rows, lt))
        src = rows[order]
        part.last_time[cell[src]] = matrix[src, _PF["last_time"]]
        part.last_value[cell[src]] = matrix[src, _PF["last_value"]]

    part.series_first_time = np.where(
        present, matrix[:, _PF["first_time"]], np.nan)
    part.series_last_time = np.where(
        present, matrix[:, _PF["last_time"]], np.nan)
    return part


# -- finishing -------------------------------------------------------------

def finish_aggregates(part: Partials,
                      aggregates: Iterable[str]) -> Dict[str, np.ndarray]:
    """Final (group × bucket) tables from cell partials.

    Empty cells come out NaN for value aggregates and 0 for the counting
    ones; ``std`` is the population standard deviation via the (n, Σ,
    Σ²) identity, clamped at zero against negative rounding residue.
    """
    shape = (part.n_groups, part.n_buckets)
    count = part.count.reshape(shape)
    nonempty = count > 0
    out: Dict[str, np.ndarray] = {}
    for agg in aggregates:
        if agg == "count":
            out[agg] = count.copy()
        elif agg == "sum":
            out[agg] = np.where(nonempty, part.vsum.reshape(shape), np.nan)
        elif agg == "mean":
            mean = np.divide(part.vsum.reshape(shape), count,
                             out=np.full(shape, np.nan), where=nonempty)
            out[agg] = mean
        elif agg == "min":
            out[agg] = np.where(nonempty, part.vmin.reshape(shape), np.nan)
        elif agg == "max":
            out[agg] = np.where(nonempty, part.vmax.reshape(shape), np.nan)
        elif agg == "std":
            mean = np.divide(part.vsum.reshape(shape), count,
                             out=np.zeros(shape), where=nonempty)
            msq = np.divide(part.vsumsq.reshape(shape), count,
                            out=np.zeros(shape), where=nonempty)
            var = np.maximum(msq - mean * mean, 0.0)
            out[agg] = np.where(nonempty, np.sqrt(var), np.nan)
        elif agg == "last":
            seen = part.last_time.reshape(shape) > _NEG_INF
            out[agg] = np.where(seen, part.last_value.reshape(shape),
                                np.nan)
        elif agg == "change_count":
            out[agg] = part.changes.reshape(shape).copy()
        elif agg == "mean_interval":
            ic = part.ivl_count.reshape(shape)
            out[agg] = np.divide(part.ivl_sum.reshape(shape), ic,
                                 out=np.full(shape, np.nan), where=ic > 0)
        elif agg == "twa_mean":
            cov = part.cover.reshape(shape)
            out[agg] = np.divide(part.area.reshape(shape), cov,
                                 out=np.full(shape, np.nan), where=cov > 0)
        else:
            raise ValueError(f"unknown aggregate {agg!r}")
    return out


@dataclass
class AggResult:
    """Finished aggregation: group labels × bucket grid tables.

    ``group_labels[g]`` is the tuple of group-by dimension values for
    group row g (empty tuple for the ungrouped single row); ``edges``
    the bucket boundaries; ``tables[agg]`` the (groups × buckets) value
    matrix; ``count``/``cover`` always present for renderers that need
    cell emptiness regardless of the requested aggregates.
    """

    spec: AggSpec
    group_labels: Tuple[Tuple[str, ...], ...]
    edges: np.ndarray
    tables: Dict[str, np.ndarray]
    count: np.ndarray
    cover: Optional[np.ndarray]

    @property
    def n_buckets(self) -> int:
        return len(self.edges) - 1
