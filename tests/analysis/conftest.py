"""Analysis-test fixtures: a small backfilled archive over 40 days."""

import numpy as np
import pytest

from repro import ServiceConfig, SpotLakeService


@pytest.fixture(scope="package")
def filled_service():
    service = SpotLakeService(ServiceConfig(seed=0))
    pools = service.cloud.catalog.all_pools()
    rng = np.random.default_rng(11)
    subset = [pools[i] for i in rng.choice(len(pools), 200, replace=False)]
    start = service.cloud.clock.start
    times = [start + d * 86400.0 + h * 43200.0
             for d in range(40) for h in (0, 1)]
    service.bulk_backfill(times, pools=subset)
    service._times = times
    service._pools = subset
    return service


@pytest.fixture(scope="package")
def sample_times(filled_service):
    return filled_service._times
