"""Tests for the capacity sweep (Figure 7)."""

import pytest

from repro.analysis import capacity_sweep, drops_by_category, representative_type


@pytest.fixture(scope="module")
def sweep(cloud):
    return capacity_sweep(cloud, cloud.clock.start + 30 * 86400.0,
                          capacities=(1, 10, 50))


class TestRepresentativeType:
    def test_prefers_xlarge(self, cloud):
        name = representative_type(cloud.catalog, "M")
        assert name.endswith(".xlarge")

    def test_smallest_when_no_xlarge(self, cloud):
        name = representative_type(cloud.catalog, "DL")
        assert name == "dl1.24xlarge"  # only size the family has

    def test_unknown_class_none(self, cloud):
        assert representative_type(cloud.catalog, "ZZ") is None


class TestCapacitySweep:
    def test_one_type_per_class(self, sweep, cloud):
        classes = {cloud.catalog.instance_type(n).class_letter
                   for n in sweep.instance_types}
        assert len(classes) == len(sweep.instance_types)

    def test_scores_monotone_nonincreasing(self, sweep):
        for name in sweep.instance_types:
            row = sweep.scores[name]
            assert all(a >= b - 1e-9 for a, b in zip(row, row[1:]))

    def test_drop_helper(self, sweep):
        for name in sweep.instance_types:
            assert sweep.drop(name) == pytest.approx(
                sweep.scores[name][0] - sweep.scores[name][-1])

    def test_accelerated_drops_hardest(self, sweep, cloud):
        drops = drops_by_category(sweep, cloud.catalog)
        assert drops["accelerated"] >= drops["general"]
        assert drops["storage"] >= drops["general"]

    def test_explicit_region_and_types(self, cloud):
        sweep = capacity_sweep(cloud, cloud.clock.start,
                               instance_types=["m5.xlarge"],
                               capacities=(1, 50), region="us-east-1")
        assert sweep.instance_types == ["m5.xlarge"]
        assert len(sweep.scores["m5.xlarge"]) == 2
