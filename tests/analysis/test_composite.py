"""Tests for the composite-query analysis (Figure 6)."""

import pytest

from repro.analysis import composite_query_study


@pytest.fixture(scope="module")
def study(cloud):
    return composite_query_study(cloud, cloud.clock.start + 30 * 86400.0,
                                 samples_per_sum=12, seed=2)


class TestCompositeStudy:
    def test_sum_stratification(self, study):
        """Every attainable individual-sum value is represented."""
        sums = {o.individual_sum for o in study.observations}
        assert sums <= set(range(3, 10))
        assert len(sums) >= 5

    def test_triples_are_offered(self, study, cloud):
        for obs in study.observations[:20]:
            for name in obs.instance_types:
                assert cloud.catalog.is_offered(name, obs.region)

    def test_scores_within_api_range(self, study):
        for obs in study.observations:
            assert 1 <= obs.composite_score <= 10
            assert 3 <= obs.individual_sum <= 9

    def test_shares_sum_to_100(self, study):
        shares = study.shares()
        assert sum(shares.values()) == pytest.approx(100.0)

    def test_composite_floor_property(self, study):
        """The sum of individual scores is (essentially) the floor of the
        composite score -- below-sum cases are rare exceptions."""
        shares = study.shares()
        assert shares["composite_below"] < 10.0
        assert shares["composite_above"] > shares["composite_below"]

    def test_scatter_counts_total(self, study):
        counts = study.scatter_counts()
        assert sum(counts.values()) == len(study.observations)

    def test_empty_shares(self):
        from repro.analysis import CompositeStudy
        assert CompositeStudy([]).shares()["equal"] == 0.0
