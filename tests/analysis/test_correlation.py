"""Tests for the Pearson correlation study."""

import numpy as np
import pytest

from repro.analysis import correlation_study, pearson


class TestPearson:
    def test_perfect_positive(self):
        x = np.array([1.0, 2.0, 3.0])
        assert pearson(x, x * 2 + 1) == pytest.approx(1.0)

    def test_perfect_negative(self):
        x = np.array([1.0, 2.0, 3.0])
        assert pearson(x, -x) == pytest.approx(-1.0)

    def test_constant_series_nan(self):
        assert np.isnan(pearson(np.ones(5), np.arange(5.0)))

    def test_too_short_nan(self):
        assert np.isnan(pearson(np.array([1.0]), np.array([2.0])))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            pearson(np.zeros(3), np.zeros(4))

    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        x, y = rng.normal(size=50), rng.normal(size=50)
        assert pearson(x, y) == pytest.approx(np.corrcoef(x, y)[0, 1])


class TestCorrelationStudy:
    def test_all_pairs_present(self, filled_service, sample_times):
        study = correlation_study(filled_service.archive, sample_times)
        assert set(study.coefficients) == {"sps_if", "if_price", "sps_price"}
        assert study.pools_evaluated > 0

    def test_coefficients_bounded(self, filled_service, sample_times):
        study = correlation_study(filled_service.archive, sample_times)
        for values in study.coefficients.values():
            if len(values):
                assert np.all(np.abs(values) <= 1.0 + 1e-9)

    def test_near_zero_mass(self, filled_service, sample_times):
        """The paper's headline: no dataset pair correlates strongly."""
        study = correlation_study(filled_service.archive, sample_times)
        for pair, values in study.coefficients.items():
            if len(values) >= 20:
                assert study.share_below_abs(pair, 0.5) > 0.5, pair

    def test_cdf_monotone(self, filled_service, sample_times):
        study = correlation_study(filled_service.archive, sample_times)
        xs, fs = study.cdf("if_price")
        if len(fs):
            assert np.all(np.diff(fs) >= 0)
            assert fs[-1] == pytest.approx(1.0)

    def test_cdf_on_grid(self, filled_service, sample_times):
        study = correlation_study(filled_service.archive, sample_times)
        xs, fs = study.cdf("if_price", grid=[-1.0, 0.0, 1.0])
        assert list(xs) == [-1.0, 0.0, 1.0]
        assert fs[-1] == pytest.approx(1.0)
