"""Tests for value distributions and the score-difference histogram."""

import pytest

from repro.analysis import (
    contradiction_summary,
    score_difference_histogram,
    value_distribution,
)
from repro.core import SpotLakeArchive


class TestValueDistribution:
    def test_percentages_sum_to_100(self, filled_service, sample_times):
        dist = value_distribution(filled_service.archive, sample_times[::4])
        assert sum(dist.sps_percent.values()) == pytest.approx(100.0)
        assert sum(dist.if_percent.values()) == pytest.approx(100.0)

    def test_sps_concentrated_at_3(self, filled_service, sample_times):
        dist = value_distribution(filled_service.archive, sample_times[::4])
        assert dist.sps_percent[3.0] > 70.0

    def test_counts_reported(self, filled_service, sample_times):
        dist = value_distribution(filled_service.archive, sample_times[::4])
        assert dist.sps_observations > 0
        assert dist.if_observations > 0

    def test_empty_archive(self):
        dist = value_distribution(SpotLakeArchive(), [0.0])
        assert dist.sps_observations == 0
        assert all(v == 0.0 for v in dist.sps_percent.values())


class TestScoreDifference:
    def test_valid_bins(self, filled_service, sample_times):
        histogram = score_difference_histogram(filled_service.archive,
                                               sample_times[::8])
        assert set(histogram) <= {0.0, 0.5, 1.0, 1.5, 2.0}
        assert sum(histogram.values()) == pytest.approx(100.0)

    def test_agreement_modal(self, filled_service, sample_times):
        histogram = score_difference_histogram(filled_service.archive,
                                               sample_times[::8])
        assert histogram[0.0] == max(histogram.values())

    def test_known_construction(self):
        archive = SpotLakeArchive()
        archive.put_sps("a.large", "r1", "r1a", 3, 0)
        archive.put_advisor("a.large", "r1", 0.3, 1.0, 60, 0)  # full clash
        archive.put_sps("b.large", "r1", "r1a", 2, 0)
        archive.put_advisor("b.large", "r1", 0.12, 2.0, 60, 0)  # agree
        histogram = score_difference_histogram(archive, [10.0])
        assert histogram == {0.0: 50.0, 2.0: 50.0}

    def test_empty(self):
        assert score_difference_histogram(SpotLakeArchive(), [0.0]) == {}


class TestContradictionSummary:
    def test_summary_fields(self):
        summary = contradiction_summary({0.0: 50.0, 1.5: 30.0, 2.0: 20.0})
        assert summary["exact_agreement"] == 50.0
        assert summary["full_contradiction"] == 20.0
        assert summary["severe_disagreement"] == 50.0
