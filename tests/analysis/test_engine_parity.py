"""Vectorized analytics engine == row-at-a-time reference (issue satellite).

The oracle is :func:`repro.devtools.analysisbench.reference_aggregate`, a
pure-Python left-to-right fold over ``archive.history`` rows.  The engine
must match it for every aggregate across hot-only, cold-only, and
federated tier splits -- exactly for the integer/extremal aggregates
(``count``/``min``/``max``/``last``/``change_count``), and within a 1e-9
relative tolerance for the float folds, whose cross-tier partial merges
may legally re-associate additions.  ``compare_aggregates`` encodes that
contract; these tests assert its verdict.
"""

import shutil
import tempfile
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.archive import (
    DIM_REGION,
    DIM_TYPE,
    DIM_ZONE,
    SpotLakeArchive,
)
from repro.devtools.analysisbench import compare_aggregates, reference_aggregate
from repro.lake import IF_SCORE_MEASURE, PRICE_MEASURE, SPS_MEASURE
from repro.timeseries import RetentionPolicy
from repro.timeseries.vector import AGGREGATES, AggSpec

from ..lake.conftest import EPOCH, drive_round

INTERVAL = 600.0
ROUNDS = 12

#: Every aggregate the engine implements, asserted in one result.
ALL_AGGS = tuple(AGGREGATES)


def _drive(archive: SpotLakeArchive, churn: int = 3) -> float:
    last = EPOCH
    for r in range(ROUNDS):
        last = drive_round(archive, r, interval=INTERVAL, churn=churn)
    return last


def _spec_grid(last: float):
    """Windows x buckets x groupings x filters, plus off-table probes."""
    windows = [
        (EPOCH, last),                                   # exact span
        (EPOCH - 3600.0, last + 1800.0),                 # padded both sides
        (EPOCH + 4 * INTERVAL + 37.0,
         EPOCH + 9 * INTERVAL + 11.0),                   # interior, unaligned
    ]
    buckets = [None, INTERVAL, 1800.0, 7 * INTERVAL + 13.0]
    groupings = [(), (DIM_TYPE,), (DIM_REGION, DIM_ZONE)]
    filters = [None, {DIM_TYPE: "pool1.large"}]
    for start, end in windows:
        for bucket in buckets:
            for group_by in groupings:
                for flt in filters:
                    yield AggSpec.make("sps", SPS_MEASURE, start, end,
                                       bucket_seconds=bucket,
                                       group_by=group_by,
                                       aggregates=ALL_AGGS, filters=flt)
    # the zoneless and price tables, one probe each
    yield AggSpec.make("advisor", IF_SCORE_MEASURE, EPOCH, last,
                       bucket_seconds=1800.0, group_by=(DIM_TYPE,),
                       aggregates=ALL_AGGS)
    yield AggSpec.make("price", PRICE_MEASURE, EPOCH - 1.0, last + 1.0,
                       bucket_seconds=None, group_by=(DIM_REGION,),
                       aggregates=ALL_AGGS)


def _assert_parity(archive: SpotLakeArchive, spec: AggSpec) -> None:
    verdict = compare_aggregates(archive.analytics.run(spec),
                                 reference_aggregate(archive, spec))
    assert verdict["identical"], (spec, verdict["mismatch"])


class TestHotOnlyParity:
    def test_every_aggregate_matches_reference(self):
        archive = SpotLakeArchive()
        try:
            last = _drive(archive)
            for spec in _spec_grid(last):
                _assert_parity(archive, spec)
        finally:
            archive.close()

    def test_empty_window_and_empty_table(self):
        archive = SpotLakeArchive()
        try:
            last = _drive(archive)
            # a window with no rows at all (before the first write)
            _assert_parity(archive, AggSpec.make(
                "sps", SPS_MEASURE, EPOCH - 7200.0, EPOCH - 3600.0,
                bucket_seconds=600.0, group_by=(DIM_TYPE,),
                aggregates=ALL_AGGS))
            # a filter that matches nothing
            _assert_parity(archive, AggSpec.make(
                "sps", SPS_MEASURE, EPOCH, last,
                aggregates=ALL_AGGS, filters={DIM_TYPE: "nope.large"}))
        finally:
            archive.close()

    def test_zero_width_window(self):
        archive = SpotLakeArchive()
        try:
            _drive(archive)
            _assert_parity(archive, AggSpec.make(
                "sps", SPS_MEASURE, EPOCH + INTERVAL, EPOCH + INTERVAL,
                aggregates=ALL_AGGS))
        finally:
            archive.close()


class TestTieredParity:
    """Cold-only and federated splits against the same oracle."""

    def _lake_archive(self, base: Path, retention_rounds: int,
                      churn: int = 3):
        archive = SpotLakeArchive(
            data_dir=base, lake=True,
            retention=RetentionPolicy(
                max_age_seconds=retention_rounds * INTERVAL))
        last = _drive(archive, churn=churn)
        assert archive.evicted_through("sps") is not None
        return archive, last

    def test_federated_window_spans_the_boundary(self, tmp_path):
        archive, last = self._lake_archive(tmp_path, retention_rounds=4)
        try:
            for spec in _spec_grid(last):
                _assert_parity(archive, spec)
        finally:
            archive.close()

    def test_cold_only_window(self, tmp_path):
        archive, last = self._lake_archive(tmp_path, retention_rounds=2)
        try:
            boundary = archive.evicted_through("sps")
            assert boundary > EPOCH
            for bucket in (None, INTERVAL, 950.0):
                _assert_parity(archive, AggSpec.make(
                    "sps", SPS_MEASURE, EPOCH - 1.0, boundary,
                    bucket_seconds=bucket, group_by=(DIM_TYPE, DIM_ZONE),
                    aggregates=ALL_AGGS))
        finally:
            archive.close()

    def test_compaction_preserves_parity(self, tmp_path):
        archive, last = self._lake_archive(tmp_path, retention_rounds=4)
        try:
            assert archive.lake.compact(include_active=True)
            for spec in _spec_grid(last):
                _assert_parity(archive, spec)
        finally:
            archive.close()


@settings(max_examples=15, deadline=None)
@given(retention_rounds=st.integers(min_value=1, max_value=ROUNDS),
       churn=st.sampled_from([1, 2, 4]),
       start_off=st.integers(min_value=-2, max_value=ROUNDS - 1),
       width=st.integers(min_value=0, max_value=ROUNDS + 2),
       bucket=st.sampled_from([None, INTERVAL / 2, INTERVAL, 1800.0,
                               5 * INTERVAL + 17.0]),
       group_by=st.sampled_from([(), (DIM_TYPE,), (DIM_ZONE,),
                                 (DIM_TYPE, DIM_REGION, DIM_ZONE)]))
def test_parity_property(retention_rounds, churn, start_off, width, bucket,
                         group_by):
    """Any eviction boundary x any window x any bucketing: engine == oracle."""
    base = Path(tempfile.mkdtemp(prefix="analytics-parity-"))
    archive = SpotLakeArchive(
        data_dir=base, lake=True,
        retention=RetentionPolicy(max_age_seconds=retention_rounds * INTERVAL))
    try:
        _drive(archive, churn=churn)
        start = EPOCH + start_off * INTERVAL + 7.0
        spec = AggSpec.make("sps", SPS_MEASURE, start,
                            start + width * INTERVAL,
                            bucket_seconds=bucket, group_by=group_by,
                            aggregates=ALL_AGGS)
        verdict = compare_aggregates(archive.analytics.run(spec),
                                     reference_aggregate(archive, spec))
        assert verdict["identical"], verdict["mismatch"]
    finally:
        archive.close()
        shutil.rmtree(base, ignore_errors=True)
