"""Tests for the temporal/spatial heatmap aggregations."""

import numpy as np

from repro.analysis import (
    Heatmap,
    spatial_heatmap,
    spatial_vs_temporal_variation,
    temporal_heatmap,
)


class TestHeatmapType:
    def test_row_means_skip_all_nan_rows(self):
        hm = Heatmap(["a", "b"], ["x"],
                     np.array([[1.0], [np.nan]]))
        assert hm.row_means() == {"a": 1.0}

    def test_overall_mean_ignores_nan(self):
        hm = Heatmap(["a"], ["x", "y"], np.array([[2.0, np.nan]]))
        assert hm.overall_mean() == 2.0


class TestTemporal:
    def test_shape_and_range(self, filled_service, sample_times):
        catalog = filled_service.cloud.catalog
        day_times = [sample_times[d * 2:(d + 1) * 2] for d in range(40)]
        hm = temporal_heatmap(filled_service.archive, catalog, day_times, "sps")
        assert hm.values.shape == (len(catalog.classes), 40)
        finite = hm.values[~np.isnan(hm.values)]
        assert np.all((finite >= 1.0) & (finite <= 3.0))

    def test_if_dataset(self, filled_service, sample_times):
        catalog = filled_service.cloud.catalog
        day_times = [sample_times[d * 2:(d + 1) * 2] for d in range(10)]
        hm = temporal_heatmap(filled_service.archive, catalog, day_times,
                              "if_score")
        finite = hm.values[~np.isnan(hm.values)]
        assert len(finite) > 0

    def test_unknown_dataset(self, filled_service, sample_times):
        import pytest
        catalog = filled_service.cloud.catalog
        with pytest.raises(ValueError):
            temporal_heatmap(filled_service.archive, catalog,
                             [sample_times[:2]], "weather")


class TestSpatial:
    def test_shape(self, filled_service, sample_times):
        catalog = filled_service.cloud.catalog
        hm = spatial_heatmap(filled_service.archive, catalog,
                             sample_times[::8], "sps")
        assert hm.values.shape == (len(catalog.classes), 17)

    def test_na_cells_for_missing_pools(self, filled_service, sample_times):
        """A 200-pool sample cannot cover every (class, region) cell."""
        catalog = filled_service.cloud.catalog
        hm = spatial_heatmap(filled_service.archive, catalog,
                             sample_times[::8], "sps")
        assert np.any(np.isnan(hm.values))

    def test_spatial_exceeds_temporal(self, filled_service, sample_times):
        catalog = filled_service.cloud.catalog
        day_times = [sample_times[d * 2:(d + 1) * 2] for d in range(40)]
        temporal = temporal_heatmap(filled_service.archive, catalog,
                                    day_times, "sps")
        spatial = spatial_heatmap(filled_service.archive, catalog,
                                  sample_times[::8], "sps")
        variation = spatial_vs_temporal_variation(temporal, spatial)
        assert variation["spatial_std"] > variation["temporal_std"]
