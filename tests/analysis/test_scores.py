"""Tests for the score conversion utilities."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.analysis import (
    BUCKET_TO_SCORE,
    categorize,
    interruption_free_score,
    mean_score,
    score_from_bucket,
)


class TestInterruptionFreeScore:
    @pytest.mark.parametrize("ratio,score", [
        (0.0, 3.0), (0.049, 3.0), (0.05, 2.5), (0.099, 2.5),
        (0.10, 2.0), (0.15, 1.5), (0.20, 1.0), (0.9, 1.0),
    ])
    def test_paper_mapping(self, ratio, score):
        """The paper maps <5% -> 3.0 down to >20% -> 1.0 in 0.5 steps."""
        assert interruption_free_score(ratio) == score

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            interruption_free_score(-0.1)

    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_always_valid_score(self, ratio):
        assert interruption_free_score(ratio) in BUCKET_TO_SCORE

    @given(st.floats(min_value=0.0, max_value=0.95))
    def test_monotone_nonincreasing(self, ratio):
        assert interruption_free_score(ratio + 0.05) <= \
            interruption_free_score(ratio)


class TestScoreFromBucket:
    def test_all_buckets(self):
        assert [score_from_bucket(i) for i in range(5)] == \
            [3.0, 2.5, 2.0, 1.5, 1.0]

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            score_from_bucket(5)


class TestCategorize:
    def test_experiment_categories(self):
        assert categorize(3.0) == "H"
        assert categorize(2.0) == "M"
        assert categorize(1.0) == "L"

    def test_intermediate_excluded(self):
        assert categorize(2.5) == ""
        assert categorize(1.5) == ""


class TestMeanScore:
    def test_mean(self):
        assert mean_score([1.0, 3.0]) == 2.0

    def test_empty_is_nan(self):
        assert math.isnan(mean_score([]))
