"""Tests for the size-grouped score analysis (Figure 5)."""

from repro.analysis import scores_by_size, size_trend_slope
from repro.cloudsim.catalog import SIZE_LADDER


class TestScoresBySize:
    def test_only_populous_sizes(self, filled_service, sample_times):
        result = scores_by_size(filled_service.archive,
                                filled_service.cloud.catalog,
                                sample_times[::8], min_types=10)
        counts = {s: 0 for s in SIZE_LADDER}
        for itype in filled_service.cloud.catalog.instance_types:
            counts[itype.size] += 1
        for size, n in zip(result.sizes, result.type_counts):
            assert n == counts[size]
            assert n > 10

    def test_sizes_ordered_small_to_large(self, filled_service, sample_times):
        result = scores_by_size(filled_service.archive,
                                filled_service.cloud.catalog,
                                sample_times[::8])
        ranks = [SIZE_LADDER.index(s) for s in result.sizes]
        assert ranks == sorted(ranks)

    def test_scores_in_range(self, filled_service, sample_times):
        result = scores_by_size(filled_service.archive,
                                filled_service.cloud.catalog,
                                sample_times[::8])
        assert all(1.0 <= v <= 3.0 for v in result.sps_means)
        assert all(1.0 <= v <= 3.0 for v in result.if_means)

    def test_decreasing_trend(self, filled_service, sample_times):
        """Figure 5: larger sizes score lower on both datasets."""
        result = scores_by_size(filled_service.archive,
                                filled_service.cloud.catalog,
                                sample_times[::8])
        assert size_trend_slope(result, "sps") < 0
        assert size_trend_slope(result, "if") < 0

    def test_as_rows(self, filled_service, sample_times):
        result = scores_by_size(filled_service.archive,
                                filled_service.cloud.catalog,
                                sample_times[::8])
        rows = result.as_rows()
        assert len(rows) == len(result.sizes)
        assert {"size", "sps", "if_score", "types"} <= set(rows[0])


class TestSlope:
    def test_short_series_zero(self):
        from repro.analysis import SizeScores
        single = SizeScores(["large"], [3.0], [2.0], [12])
        assert size_trend_slope(single) == 0.0
