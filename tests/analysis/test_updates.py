"""Tests for the update-frequency study (Figure 10)."""

import math

import numpy as np

from repro.analysis import update_frequency_study
from repro.core import SpotLakeArchive


class TestUpdateFrequencyStudy:
    def test_ordering_matches_paper(self, filled_service):
        """SPS updates most often, the advisor least (Figure 10)."""
        study = update_frequency_study(filled_service.archive)
        assert study.ordering() == ["sps", "price", "if_score"]

    def test_cdf_shape(self, filled_service):
        study = update_frequency_study(filled_service.archive)
        xs, fs = study.cdf("price")
        assert len(xs) == len(fs)
        assert np.all(np.diff(xs) >= 0)
        assert fs[-1] == 1.0

    def test_empty_dataset(self):
        study = update_frequency_study(SpotLakeArchive())
        assert math.isnan(study.median_hours("sps"))
        xs, fs = study.cdf("sps")
        assert len(xs) == 0

    def test_intervals_positive(self, filled_service):
        study = update_frequency_study(filled_service.archive)
        for values in study.intervals.values():
            assert np.all(values > 0)

    def test_known_construction(self):
        archive = SpotLakeArchive()
        for t, v in [(0, 3), (3600, 2), (7200, 3)]:
            archive.put_sps("a.large", "r1", "r1a", v, t)
        study = update_frequency_study(archive)
        assert study.median_hours("sps") == 1.0
