"""Tests for the checkpointed batch-job simulator."""

import pytest

from repro.apps import BatchJobSimulator, JobSpec, compare_policies
from repro.apps import CheapestPolicy, CombinedScorePolicy
from repro.cloudsim import SimulatedCloud


@pytest.fixture()
def sim(fresh_cloud):
    return BatchJobSimulator(fresh_cloud)


def reliable_pool(cloud, t):
    """An H-H pool (fulfills immediately, rarely interrupted)."""
    from repro.analysis.scores import interruption_free_score
    for pool in cloud.catalog.all_pools():
        itype, region, zone = pool
        if cloud.placement.zone_score(itype, region, zone, t) == 3:
            ratio = cloud.advisor.interruption_ratio(itype, region, t)
            if interruption_free_score(ratio) == 3.0:
                return pool
    raise AssertionError("no reliable pool found")


class TestJobSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            JobSpec(work_hours=0)
        with pytest.raises(ValueError):
            JobSpec(work_hours=1, checkpoint_interval_hours=0)


class TestBatchJobSimulator:
    def test_reliable_pool_completes_on_time(self, fresh_cloud, sim):
        t = fresh_cloud.clock.start + 10 * 86400.0
        pool = reliable_pool(fresh_cloud, t)
        result = sim.run(JobSpec(work_hours=4), pool, t)
        assert result.completed
        assert result.makespan_hours < 6.0
        assert result.billed_hours >= 4.0
        assert result.cost > 0

    def test_accounting_identity(self, fresh_cloud, sim):
        """billed = useful + wasted when the job completes."""
        t = fresh_cloud.clock.start + 10 * 86400.0
        pool = reliable_pool(fresh_cloud, t)
        for hours in (2, 8, 16):
            result = sim.run(JobSpec(work_hours=hours), pool, t)
            if result.completed:
                useful = result.billed_hours - result.wasted_hours
                assert useful == pytest.approx(hours, abs=1e-6)
                assert 0.0 <= result.efficiency <= 1.0

    def test_interruptions_waste_work(self, fresh_cloud, sim):
        """Across many jobs on risky pools, interruptions produce waste."""
        t = fresh_cloud.clock.start + 10 * 86400.0
        risky = [p for p in fresh_cloud.catalog.all_pools()
                 if fresh_cloud.placement.zone_score(*p, t) == 1][:25]
        wasted = 0.0
        interrupted = 0
        for pool in risky:
            result = sim.run(JobSpec(work_hours=12,
                                     checkpoint_interval_hours=2), pool, t)
            wasted += result.wasted_hours
            interrupted += result.interruptions
        assert interrupted > 0
        assert wasted > 0.0

    def test_makespan_at_least_work(self, fresh_cloud, sim):
        t = fresh_cloud.clock.start + 10 * 86400.0
        pool = reliable_pool(fresh_cloud, t)
        result = sim.run(JobSpec(work_hours=6), pool, t)
        assert result.makespan_hours >= 6.0 - 1e-9


class TestComparePolicies:
    def test_outcomes_per_policy(self, fresh_cloud):
        t = fresh_cloud.clock.start + 10 * 86400.0
        pools = fresh_cloud.catalog.all_pools()[::150][:30]
        outcomes = compare_policies(
            fresh_cloud, [CheapestPolicy(), CombinedScorePolicy()],
            pools, JobSpec(work_hours=6), t, jobs_per_policy=6)
        assert [o.policy for o in outcomes] == ["cheapest", "combined"]
        for outcome in outcomes:
            assert 0.0 <= outcome.completion_rate <= 1.0
            assert outcome.mean_cost >= 0.0
