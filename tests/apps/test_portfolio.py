"""Tests for the portfolio allocator."""

import pytest

from repro.apps.portfolio import (
    Allocation,
    Portfolio,
    build_portfolio,
    efficient_frontier,
    interruption_risk,
)
from repro.apps.selection import PoolView


def view(name, region, price, sps, ifs):
    return PoolView((name, region, f"{region}a"), price, sps, ifs)


SAFE_CHEAP = view("a", "r1", 0.05, 3, 3.0)
SAFE_DEAR = view("b", "r2", 0.20, 3, 3.0)
RISKY_CHEAP = view("c", "r3", 0.01, 1, 1.0)
MEDIUM = view("d", "r4", 0.08, 2, 2.0)
VIEWS = [SAFE_CHEAP, SAFE_DEAR, RISKY_CHEAP, MEDIUM]


class TestRiskModel:
    def test_monotone_in_scores(self):
        assert interruption_risk(SAFE_CHEAP) < interruption_risk(MEDIUM)
        assert interruption_risk(MEDIUM) < interruption_risk(RISKY_CHEAP)

    def test_hh_matches_table3(self):
        assert interruption_risk(SAFE_CHEAP) == pytest.approx(0.15)


class TestBuildPortfolio:
    def test_meets_fleet_and_budget(self):
        portfolio = build_portfolio(VIEWS, fleet_size=10, risk_budget=0.30)
        assert portfolio is not None
        assert portfolio.total_instances == 10
        assert portfolio.expected_interruption_rate <= 0.30 + 1e-9

    def test_diversification_constraints(self):
        portfolio = build_portfolio(VIEWS, fleet_size=10, risk_budget=0.30,
                                    max_pool_share=0.4)
        assert portfolio is not None
        assert portfolio.max_single_pool_share() <= 0.4
        assert len(portfolio.regions) >= 2

    def test_tight_budget_excludes_risky_pools(self):
        views = VIEWS + [view("e", "r5", 0.30, 3, 3.0)]
        portfolio = build_portfolio(views, fleet_size=10, risk_budget=0.22)
        assert portfolio is not None
        pools = {a.view.pool[0] for a in portfolio.allocations}
        assert "c" not in pools  # the risky pool cannot fit a 0.22 budget
        assert portfolio.expected_interruption_rate <= 0.22 + 1e-9

    def test_infeasible_fleet_under_budget_is_none(self):
        """Caps plus a tight budget can make the fleet impossible; the
        allocator reports that instead of overshooting the budget."""
        assert build_portfolio(VIEWS, fleet_size=10, risk_budget=0.20) is None

    def test_infeasible_returns_none(self):
        only_risky = [RISKY_CHEAP]
        assert build_portfolio(only_risky, fleet_size=5,
                               risk_budget=0.2) is None

    def test_region_requirement(self):
        one_region = [view("a", "r1", 0.05, 3, 3.0),
                      view("b", "r1", 0.06, 3, 3.0)]
        assert build_portfolio(one_region, fleet_size=4,
                               min_regions=2, max_pool_share=0.5) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            build_portfolio(VIEWS, fleet_size=0)
        with pytest.raises(ValueError):
            build_portfolio(VIEWS, fleet_size=4, max_pool_share=0.0)


class TestFrontier:
    def test_cost_nonincreasing_with_looser_budget(self):
        frontier = efficient_frontier(VIEWS, fleet_size=10,
                                      budgets=(0.25, 0.45, 0.9))
        costs = [p.hourly_cost for _, p in frontier if p is not None]
        assert len(costs) >= 2
        assert all(a >= b - 1e-9 for a, b in zip(costs, costs[1:]))

    def test_real_catalog_portfolio(self, cloud):
        """Build a portfolio over real simulated pools."""
        from repro.apps.selection import snapshot_pools
        t = cloud.clock.start + 20 * 86400.0
        pools = cloud.catalog.all_pools()[::97][:40]
        views = snapshot_pools(cloud, pools, t)
        portfolio = build_portfolio(views, fleet_size=20, risk_budget=0.5,
                                    min_regions=2)
        assert portfolio is not None
        assert portfolio.total_instances == 20
        assert portfolio.hourly_cost > 0
