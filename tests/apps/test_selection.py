"""Tests for pool selection policies."""

import numpy as np
import pytest

from repro.apps import (
    ALL_POLICIES,
    CheapestPolicy,
    CombinedScorePolicy,
    HistoricalPolicy,
    IfScorePolicy,
    PoolView,
    SpsPolicy,
    snapshot_pools,
)


def view(pool, price, sps, ifs, sps_hist=None, if_hist=None):
    return PoolView(pool, price, sps, ifs, sps_hist, if_hist)


VIEWS = [
    view(("a", "r", "ra"), 0.10, 3, 3.0),
    view(("b", "r", "rb"), 0.05, 1, 1.0),
    view(("c", "r", "rc"), 0.07, 3, 1.0),
    view(("d", "r", "rd"), 0.20, 2, 3.0),
]


class TestPolicies:
    def test_cheapest_ignores_scores(self):
        ranked = CheapestPolicy().rank(VIEWS)
        assert ranked[0].pool == ("b", "r", "rb")

    def test_sps_policy(self):
        ranked = SpsPolicy().rank(VIEWS)
        assert ranked[0].sps == 3
        assert ranked[0].pool == ("c", "r", "rc")  # cheaper of the two SPS-3

    def test_if_policy(self):
        ranked = IfScorePolicy().rank(VIEWS)
        assert ranked[0].if_score == 3.0
        assert ranked[0].pool == ("a", "r", "ra")

    def test_combined_prefers_hh(self):
        ranked = CombinedScorePolicy().rank(VIEWS)
        assert ranked[0].pool == ("a", "r", "ra")  # the only H-H
        # SPS dominates on disagreement (paper Section 5.4)
        assert ranked[1].pool == ("c", "r", "rc")

    def test_historical_uses_month_means(self):
        views = [
            view(("a", "r", "ra"), 0.10, 3, 3.0, sps_hist=1.2, if_hist=1.0),
            view(("b", "r", "rb"), 0.10, 3, 3.0, sps_hist=3.0, if_hist=3.0),
        ]
        ranked = HistoricalPolicy().rank(views)
        assert ranked[0].pool == ("b", "r", "rb")

    def test_historical_falls_back_to_current(self):
        ranked = HistoricalPolicy().rank(VIEWS)
        assert ranked[0].pool == ("a", "r", "ra")

    def test_all_policies_are_permutations(self):
        for policy_cls in ALL_POLICIES:
            ranked = policy_cls().rank(VIEWS)
            assert sorted(v.pool for v in ranked) == \
                sorted(v.pool for v in VIEWS)


class TestSnapshot:
    def test_views_match_engines(self, cloud):
        t = cloud.clock.start + 10 * 86400.0
        pools = cloud.catalog.all_pools()[:5]
        views = snapshot_pools(cloud, pools, t)
        for v in views:
            itype, region, zone = v.pool
            assert v.sps == cloud.placement.zone_score(itype, region, zone, t)
            assert v.spot_price == cloud.pricing.spot_price(itype, region, t, zone)
            assert v.sps_mean_30d is None  # no archive supplied

    def test_views_with_archive_history(self, cloud):
        from repro.core import SpotLakeArchive
        t = cloud.clock.start + 10 * 86400.0
        pool = cloud.catalog.all_pools()[0]
        archive = SpotLakeArchive()
        archive.put_sps(*pool, 2, t - 20 * 86400.0)
        archive.put_advisor(pool[0], pool[1], 0.12, 2.0, 70, t - 20 * 86400.0)
        views = snapshot_pools(cloud, [pool], t, archive)
        assert views[0].sps_mean_30d == 2.0
        assert views[0].if_mean_30d == 2.0
