"""Shared fixtures for the chaos suite: tiny worlds with injectable faults.

Everything here runs against a two-family, two-region catalog so that
hundreds of chaos rounds stay sub-second; the full-catalog path is
exercised by the doublerun-based determinism tests.
"""

from __future__ import annotations

from typing import Optional, Sequence

import pytest

from repro import ServiceConfig, SpotLakeService
from repro.cloudsim import (
    CHAOS_PROFILES,
    Catalog,
    FaultInjector,
    FaultPlan,
    FaultWindow,
    InstanceFamily,
    Region,
    SimulatedCloud,
    resolve_profile,
)


def build_tiny_cloud(seed: int = 0) -> SimulatedCloud:
    families = [
        InstanceFamily("m9", "M", "general", ("large", "xlarge")),
        InstanceFamily("p9", "P", "accelerated", ("2xlarge",), "gpu", 3.0),
    ]
    regions = [Region("rg-one-1", "rg", 3), Region("rg-two-1", "rg", 2)]
    return SimulatedCloud(seed=seed,
                          catalog=Catalog(seed=1, families=families,
                                          regions=regions))


def build_chaos_service(chaos_profile: str = "none",
                        chaos_seed: Optional[int] = None,
                        windows: Sequence[FaultWindow] = (),
                        seed: int = 0,
                        **config_kwargs) -> SpotLakeService:
    """A tiny-catalog service, optionally with scheduled fault windows."""
    cloud = build_tiny_cloud(seed)
    config = ServiceConfig(seed=seed, chaos_profile=chaos_profile,
                           chaos_seed=chaos_seed, **config_kwargs)
    service = SpotLakeService(config, cloud=cloud)
    if windows:
        effective_seed = chaos_seed if chaos_seed is not None else seed
        service.cloud.faults = FaultInjector(
            FaultPlan(seed=effective_seed,
                      profile=resolve_profile(chaos_profile),
                      windows=tuple(windows)),
            service.cloud.clock)
    return service


@pytest.fixture()
def tiny_cloud() -> SimulatedCloud:
    return build_tiny_cloud()


@pytest.fixture()
def heavy_profile():
    return CHAOS_PROFILES["heavy"]
