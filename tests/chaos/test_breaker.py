"""Circuit-breaker state machine tests: closed -> open -> half-open -> closed."""

import pytest

from repro.cloudsim import SimulationClock, ThrottlingError
from repro.core import (
    BreakerState,
    CircuitBreaker,
    GAP_BREAKER_OPEN,
    ResilientExecutor,
    RetryPolicy,
)


def make_breaker(threshold=3, reset=600.0):
    clock = SimulationClock()
    return CircuitBreaker(clock, failure_threshold=threshold,
                          reset_timeout=reset), clock


class TestStateMachine:
    def test_starts_closed_and_allowing(self):
        breaker, _ = make_breaker()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()

    def test_opens_after_consecutive_failures(self):
        breaker, _ = make_breaker(threshold=3)
        for _ in range(2):
            breaker.record_failure()
            assert breaker.state is BreakerState.CLOSED
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()
        assert breaker.trips == 1

    def test_success_resets_the_failure_streak(self):
        breaker, _ = make_breaker(threshold=3)
        for _ in range(5):
            breaker.record_failure()
            breaker.record_failure()
            breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.trips == 0

    def test_half_open_after_reset_timeout(self):
        breaker, clock = make_breaker(threshold=1, reset=600.0)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(599.0)
        assert not breaker.allow()
        clock.advance(1.0)
        assert breaker.allow()
        assert breaker.state is BreakerState.HALF_OPEN

    def test_half_open_probe_success_closes(self):
        breaker, clock = make_breaker(threshold=1, reset=600.0)
        breaker.record_failure()
        clock.advance(600.0)
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()

    def test_half_open_probe_failure_reopens(self):
        breaker, clock = make_breaker(threshold=1, reset=600.0)
        breaker.record_failure()
        clock.advance(600.0)
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert breaker.trips == 2
        # the cool-down restarts from the re-trip
        clock.advance(599.0)
        assert not breaker.allow()
        clock.advance(1.0)
        assert breaker.allow()

    def test_full_cycle_closed_open_half_open_closed(self):
        breaker, clock = make_breaker(threshold=2, reset=300.0)
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(300.0)
        breaker.record_success()
        states = [state for _, state in breaker.transitions]
        assert states == [BreakerState.OPEN, BreakerState.HALF_OPEN,
                          BreakerState.CLOSED]

    def test_transition_log_carries_sim_times(self):
        breaker, clock = make_breaker(threshold=1, reset=300.0)
        t0 = clock.now()
        breaker.record_failure()
        clock.advance(300.0)
        assert breaker.allow()
        assert breaker.transitions[0] == (t0, BreakerState.OPEN)
        assert breaker.transitions[1] == (t0 + 300.0, BreakerState.HALF_OPEN)

    def test_constructor_validation(self):
        clock = SimulationClock()
        with pytest.raises(ValueError):
            CircuitBreaker(clock, failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(clock, reset_timeout=0.0)


class TestExecutorIntegration:
    def _executor(self, threshold=2, reset=600.0, max_attempts=5):
        clock = SimulationClock()
        breaker = CircuitBreaker(clock, failure_threshold=threshold,
                                 reset_timeout=reset)
        policy = RetryPolicy(max_attempts=max_attempts, base_delay=1.0,
                             jitter=0.0)
        return ResilientExecutor("sps", clock, policy, breaker), clock

    def test_trip_stops_the_retry_loop(self):
        executor, _ = self._executor(threshold=2, max_attempts=5)

        def always_throttled():
            raise ThrottlingError("injected")

        outcome = executor.call(("q",), always_throttled)
        assert not outcome.ok
        assert outcome.attempts == 2  # the trip pre-empts attempts 3..5
        assert outcome.breaker_tripped
        assert executor.breaker.state is BreakerState.OPEN

    def test_open_breaker_short_circuits_calls(self):
        executor, _ = self._executor(threshold=1)
        executor.call(("q1",), self._raiser())
        calls = {"n": 0}

        def fn():
            calls["n"] += 1
            return 1

        outcome = executor.call(("q2",), fn)
        assert not outcome.ok
        assert outcome.gap_reason == GAP_BREAKER_OPEN
        assert outcome.attempts == 0
        assert calls["n"] == 0  # the protected call never ran

    def test_half_open_probe_recovers_the_source(self):
        executor, clock = self._executor(threshold=1, reset=600.0)
        executor.call(("q1",), self._raiser())
        clock.advance(600.0)
        outcome = executor.call(("q2",), lambda: "ok")
        assert outcome.ok
        assert executor.breaker.state is BreakerState.CLOSED

    @staticmethod
    def _raiser():
        def fn():
            raise ThrottlingError("injected")
        return fn
