"""End-to-end chaos runs: the ISSUE's acceptance scenario.

A 24-hour simulated collection run under a >=10% transient-fault profile
must (a) finish with zero unhandled exceptions, (b) resolve every planned
query as either a success or an explicit gap record, and (c) replay
byte-identically under the same chaos seed.
"""

from repro.cloudsim import (
    CHAOS_PROFILES,
    FaultInjector,
    FaultPlan,
    FaultWindow,
)
from repro.core import CollectionReport
from repro.devtools.doublerun import double_run, snapshot_digests

from .conftest import build_chaos_service

HOURS_24 = 24 * 3600.0


def run_rounds(service, rounds, interval_minutes=60.0):
    """Drive ``rounds`` explicit collection rounds; merge all reports."""
    totals = {name: CollectionReport() for name in ("sps", "advisor", "price")}
    for _ in range(rounds):
        for name, report in service.collect_once().items():
            totals[name] = totals[name].merge(report)
        service.cloud.clock.advance_minutes(interval_minutes)
    return totals


class TestAcceptanceRun:
    def test_24h_moderate_chaos_completes_without_exceptions(self):
        service = build_chaos_service("moderate", chaos_seed=42)
        assert CHAOS_PROFILES["moderate"].total_rate >= 0.10
        runs = service.run_collection(HOURS_24)
        assert runs > 0
        # an unhandled collector exception would surface as a job failure
        for job in service.scheduler.jobs():
            assert job.failures == 0
        assert all(entry.status == "ok" for entry in service.scheduler.history)
        assert service.cloud.clock.now() >= \
            service.cloud.clock.start + HOURS_24
        assert service.cloud.faults.faults_injected() > 0

    def test_every_planned_query_resolves_success_or_gap(self):
        service = build_chaos_service("heavy", chaos_seed=7,
                                      retry_attempts=2)
        totals = run_rounds(service, rounds=24)
        for source, report in totals.items():
            assert report.queries_failed == report.gaps, source
        total_gaps = sum(r.gaps for r in totals.values())
        assert service.archive.gap_count() == total_gaps
        # heavy chaos over 24 rounds must actually exercise the fault paths
        assert sum(r.retries for r in totals.values()) > 0
        assert totals["sps"].records_written > 0

    def test_identical_chaos_seeds_replay_byte_identically(self):
        result = double_run(seed=0, rounds=2, chaos_profile="heavy",
                            chaos_seed=5)
        assert result.identical, result.summary()
        assert "deterministic" in result.summary()

    def test_different_chaos_seeds_change_the_fault_schedule(self):
        services = [build_chaos_service("heavy", chaos_seed=s)
                    for s in (1, 2)]
        for service in services:
            run_rounds(service, rounds=6)
        schedules = [
            [(f.operation, f.kind, f.call_index)
             for f in service.cloud.faults.injected]
            for service in services]
        assert schedules[0] != schedules[1]

    def test_chaos_digests_differ_from_clean_digests_only_via_gaps(self):
        clean = snapshot_digests(seed=0, rounds=2)
        chaotic = snapshot_digests(seed=0, rounds=2, chaos_profile="heavy",
                                   chaos_seed=5)
        assert "gaps" not in clean
        # chaos may or may not gap in 2 rounds, but the run must produce
        # the same table set plus at most the gaps table
        assert set(clean) <= set(chaotic) | {"gaps"}


class TestOutageRecovery:
    def test_outage_window_gaps_then_recovers(self):
        service = build_chaos_service(
            "none", retry_attempts=2, breaker_threshold=3,
            breaker_reset=1800.0)
        clock = service.cloud.clock
        window = FaultWindow(clock.start + 2 * 3600.0,
                             clock.start + 4 * 3600.0,
                             kind="internal")
        service.cloud.faults = FaultInjector(FaultPlan(windows=(window,)),
                                             clock)
        service.run_collection(HOURS_24)

        assert service.archive.gap_count() > 0
        stats = service.resilience_stats()
        assert stats["sps"]["breaker_trips"] >= 1
        # after the outage the breaker recovered and collection resumed
        assert stats["sps"]["breaker_state"] == "closed"
        last = service.scheduler.jobs()[0].last_report
        assert last.queries_failed == 0
        # collection rounds kept landing after the outage window closed
        post = [entry for entry in service.scheduler.history
                if entry.name == "sps" and entry.time > window.end]
        assert post and all(entry.status == "ok" for entry in post)

    def test_breaker_open_gaps_carry_zero_attempts(self):
        service = build_chaos_service(
            "none", retry_attempts=2, breaker_threshold=2,
            breaker_reset=1e9)
        clock = service.cloud.clock
        window = FaultWindow(clock.start, clock.start + 1e9,
                             kind="throttle")
        service.cloud.faults = FaultInjector(FaultPlan(windows=(window,)),
                                             clock)
        service.collect_once()
        reasons = {g.dimension_dict["Reason"]: g.value
                   for g in service.archive.gap_history({"Source": "sps"})}
        assert "breaker-open" in reasons
        assert reasons["breaker-open"] == 0

    def test_resilience_stats_cover_all_sources(self):
        service = build_chaos_service("light", chaos_seed=3)
        service.run_collection(4 * 3600.0)
        stats = service.resilience_stats()
        assert set(stats) == {"sps", "advisor", "price"}
        for source, entry in stats.items():
            assert entry["source"] == source
            assert entry["calls"] > 0
            assert entry["breaker_state"] in ("closed", "open", "half-open")

    def test_chaos_disabled_service_has_no_injector(self):
        service = build_chaos_service("none")
        assert not service.chaos_enabled
        service.collect_once()
        assert service.archive.gap_count() == 0


class TestSanitizedChaos:
    """Fault injection under the runtime concurrency sanitizer.

    Chaos exercises the retry/breaker/gap paths on pool workers -- the
    code most likely to touch shared state off the happy path -- so a
    clean sanitizer verdict here is the strongest dynamic evidence the
    threaded pipeline holds its locks.
    """

    def test_chaotic_parallel_rounds_are_race_free(self, conc_sanitizer):
        service = build_chaos_service("moderate", chaos_seed=42, workers=4)
        try:
            totals = run_rounds(service, rounds=6)
            assert totals["sps"].queries_issued > 0
        finally:
            service.close()
