"""Unit tests for the deterministic fault injector (cloudsim.faults)."""

import pytest

from repro.cloudsim import (
    CHAOS_PROFILES,
    Account,
    ChaosProfile,
    CloudError,
    CredentialExpiredError,
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultWindow,
    InternalServerError,
    RequestTimeoutError,
    SimulationClock,
    ThrottlingError,
    TransientError,
    make_fault,
    resolve_profile,
)

from .conftest import build_tiny_cloud


def drive(injector, operation, calls, account=None):
    """Issue ``calls`` calls, collecting the faults that fire."""
    faults = []
    for _ in range(calls):
        try:
            injector.before_call(operation, account)
        except CloudError as exc:
            faults.append(exc)
    return faults


class TestErrorTaxonomy:
    def test_transient_errors_are_retryable_cloud_errors(self):
        for cls in (ThrottlingError, InternalServerError,
                    RequestTimeoutError, CredentialExpiredError):
            assert issubclass(cls, TransientError)
            assert issubclass(cls, CloudError)
            assert cls.retryable

    def test_aws_compatible_codes(self):
        assert ThrottlingError.code == "RequestLimitExceeded"
        assert InternalServerError.code == "InternalError"
        assert RequestTimeoutError.code == "RequestTimeout"
        assert CredentialExpiredError.code == "ExpiredToken"

    def test_non_transient_errors_are_not_retryable(self):
        assert not CloudError.retryable

    def test_make_fault_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            make_fault("meteor-strike", "sps")

    def test_make_fault_builds_each_kind(self):
        for kind in FAULT_KINDS:
            error = make_fault(kind, "sps")
            assert isinstance(error, TransientError)
            assert "sps" in str(error)


class TestProfiles:
    def test_named_profiles_registered(self):
        assert set(CHAOS_PROFILES) == {"none", "light", "moderate", "heavy"}

    def test_none_profile_is_silent(self):
        assert CHAOS_PROFILES["none"].total_rate == 0.0

    def test_moderate_profile_clears_ten_percent(self):
        assert CHAOS_PROFILES["moderate"].total_rate >= 0.10

    def test_resolve_profile_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown chaos profile"):
            resolve_profile("apocalyptic")


class TestInjectorDeterminism:
    def test_identical_plans_replay_identically(self):
        plan = FaultPlan(seed=11, profile=CHAOS_PROFILES["heavy"])
        schedules = []
        for _ in range(2):
            injector = FaultInjector(plan, SimulationClock())
            account = Account("acct-a")
            drive(injector, "sps", 300, account)
            account.refresh_credentials()
            schedules.append([(f.operation, f.kind, f.call_index)
                              for f in injector.injected])
        assert schedules[0] == schedules[1]
        assert schedules[0]  # heavy profile over 300 calls must fault

    def test_different_seeds_diverge(self):
        clock = SimulationClock()
        plans = [FaultPlan(seed=s, profile=CHAOS_PROFILES["heavy"])
                 for s in (1, 2)]
        schedules = []
        for plan in plans:
            injector = FaultInjector(plan, clock)
            drive(injector, "price", 400)
            schedules.append([(f.kind, f.call_index)
                              for f in injector.injected])
        assert schedules[0] != schedules[1]

    def test_rate_approximates_profile(self):
        injector = FaultInjector(
            FaultPlan(seed=3, profile=CHAOS_PROFILES["heavy"]),
            SimulationClock())
        faults = drive(injector, "price", 2000)
        rate = len(faults) / 2000
        assert 0.15 <= rate <= 0.35  # heavy profile totals 0.25

    def test_all_kinds_eventually_fire(self):
        injector = FaultInjector(
            FaultPlan(seed=5, profile=CHAOS_PROFILES["heavy"]),
            SimulationClock())
        account = Account("acct-b")
        faults = drive(injector, "sps", 2000, account)
        account.refresh_credentials()
        assert {type(f).__name__ for f in faults} == {
            "ThrottlingError", "InternalServerError",
            "RequestTimeoutError", "CredentialExpiredError"}

    def test_call_counter_tracks_per_operation(self):
        injector = FaultInjector(FaultPlan(), SimulationClock())
        drive(injector, "sps", 3)
        drive(injector, "advisor", 2)
        assert injector.calls("sps") == 3
        assert injector.calls("advisor") == 2
        assert injector.calls("price") == 0


class TestFaultWindows:
    def test_window_faults_every_covered_call(self):
        clock = SimulationClock()
        window = FaultWindow(clock.now(), clock.now() + 100.0,
                             kind="internal")
        injector = FaultInjector(FaultPlan(windows=(window,)), clock)
        faults = drive(injector, "sps", 5)
        assert len(faults) == 5
        assert all(isinstance(f, InternalServerError) for f in faults)

    def test_window_clears_when_clock_leaves_it(self):
        clock = SimulationClock()
        window = FaultWindow(clock.now(), clock.now() + 100.0)
        injector = FaultInjector(FaultPlan(windows=(window,)), clock)
        assert len(drive(injector, "sps", 2)) == 2
        clock.advance(100.0)  # end is exclusive
        assert drive(injector, "sps", 2) == []

    def test_window_operation_filter(self):
        clock = SimulationClock()
        window = FaultWindow(clock.now(), clock.now() + 100.0,
                             operation="sps")
        injector = FaultInjector(FaultPlan(windows=(window,)), clock)
        assert len(drive(injector, "sps", 1)) == 1
        assert drive(injector, "advisor", 1) == []

    def test_window_before_start_is_inactive(self):
        clock = SimulationClock()
        window = FaultWindow(clock.now() + 50.0, clock.now() + 100.0)
        injector = FaultInjector(FaultPlan(windows=(window,)), clock)
        assert drive(injector, "sps", 1) == []
        clock.advance(50.0)
        assert len(drive(injector, "sps", 1)) == 1


class TestCredentialFaults:
    def test_credential_fault_expires_the_account(self):
        profile = ChaosProfile("creds-only", credentials=1.0)
        injector = FaultInjector(FaultPlan(profile=profile),
                                 SimulationClock())
        account = Account("acct-c")
        assert account.credentials_valid
        with pytest.raises(CredentialExpiredError):
            injector.before_call("sps", account)
        assert not account.credentials_valid
        with pytest.raises(CredentialExpiredError):
            account.check_credentials()
        account.refresh_credentials()
        account.check_credentials()  # no raise after refresh

    def test_refresh_preserves_quota_state(self):
        account = Account("acct-d", quota=5)
        key = (frozenset({"m5.large"}), frozenset({"r1"}), 1, True)
        account.charge(key, 0.0)
        account.expire_credentials()
        account.refresh_credentials()
        assert account.unique_queries_used(0.0) == 1

    def test_anonymous_surface_degrades_to_timeout(self):
        profile = ChaosProfile("creds-only", credentials=1.0)
        injector = FaultInjector(FaultPlan(profile=profile),
                                 SimulationClock())
        with pytest.raises(RequestTimeoutError):
            injector.before_call("advisor", account=None)
        assert injector.injected[-1].kind == "timeout"


class TestApiSurfaceHooks:
    def _armed_cloud(self, operation="*"):
        cloud = build_tiny_cloud()
        window = FaultWindow(cloud.clock.now(), cloud.clock.now() + 3600.0,
                             operation=operation, kind="throttle")
        cloud.faults = FaultInjector(FaultPlan(windows=(window,)),
                                     cloud.clock)
        return cloud

    def test_sps_call_faults_and_charges_no_quota(self):
        cloud = self._armed_cloud("sps")
        account = Account("acct-e")
        client = cloud.client(account)
        with pytest.raises(ThrottlingError):
            client.get_spot_placement_scores(["m9.large"], ["rg-one-1"])
        assert account.unique_queries_used(cloud.clock.now()) == 0

    def test_advisor_snapshot_faults(self):
        cloud = self._armed_cloud("advisor")
        with pytest.raises(ThrottlingError):
            cloud.advisor_web_snapshot()

    def test_price_history_faults(self):
        cloud = self._armed_cloud("price")
        client = cloud.client(Account("acct-f"))
        with pytest.raises(ThrottlingError):
            client.describe_spot_price_history(
                ["m9.large"], cloud.clock.now() - 3600.0, cloud.clock.now(),
                region="rg-one-1")

    def test_unarmed_cloud_never_faults(self):
        cloud = build_tiny_cloud()
        assert cloud.faults is None
        rows = cloud.client(Account("acct-g")).get_spot_placement_scores(
            ["m9.large"], ["rg-one-1"])
        assert rows

    def test_expired_credentials_block_api_until_refresh(self):
        cloud = build_tiny_cloud()
        account = Account("acct-h")
        account.expire_credentials()
        client = cloud.client(account)
        with pytest.raises(CredentialExpiredError):
            client.get_spot_placement_scores(["m9.large"], ["rg-one-1"])
        account.refresh_credentials()
        assert client.get_spot_placement_scores(["m9.large"], ["rg-one-1"])
