"""Frontend under chaos: cached serving over gapped sources, breaker-aware
503 hints.

The serving path must degrade independently of the collection path: a
gapped or breaker-isolated source stops *ingest*, not *reads* -- the
archive keeps answering from what it has (and from the generation-stamped
cache), while overload 503s tell clients to back off at least as long as
the slowest breaker's cool-down.
"""

import pytest

from repro.cloudsim import PAPER_WINDOW_START, FaultWindow
from repro.core import BreakerState, SHEDDING, Tenant

from .conftest import build_chaos_service

HOUR = 3600.0


def _dash_tenant() -> Tenant:
    return Tenant("dash", rate=1_000_000.0, burst=1_000_000.0)


class TestServingOverGaps:
    def test_cached_reads_survive_a_gapped_source(self):
        # moderate background chaos plus a hard multi-hour sps outage
        service = build_chaos_service(
            "moderate", chaos_seed=11,
            windows=[FaultWindow(PAPER_WINDOW_START + 2 * HOUR,
                                 PAPER_WINDOW_START + 6 * HOUR,
                                 kind="internal")],
            retry_attempts=2, breaker_threshold=3, breaker_reset=1800.0)
        service.run_collection(8 * HOUR)
        assert service.archive.gap_count() > 0, \
            "outage window produced no gaps; the scenario is vacuous"

        clock = service.cloud.clock
        params = {"start": str(clock.start - 1.0),
                  "end": str(clock.now() + 1.0)}
        frontend = service.frontend(tenants=[_dash_tenant()], workers=2)
        with frontend:
            first = frontend.request("key-dash", "/sps/history", params,
                                     arrival_time=0.0)
            second = frontend.request("key-dash", "/sps/history", params,
                                      arrival_time=1.0)
        assert first.status == 200
        assert first.body["total"] > 0  # pre-outage data still served
        # byte-identical repeat via the read cache
        assert first.json() == second.json()
        assert service.archive.cache_stats()["tables"]["sps"]["hits"] >= 1

    def test_gap_history_itself_stays_queryable(self):
        service = build_chaos_service(
            "none",
            windows=[FaultWindow(PAPER_WINDOW_START,
                                 PAPER_WINDOW_START + 2 * HOUR,
                                 kind="internal")],
            retry_attempts=1, breaker_threshold=100)
        service.run_collection(3 * HOUR)
        assert service.archive.gap_count() > 0
        frontend = service.frontend(tenants=[_dash_tenant()], workers=1)
        with frontend:
            response = frontend.request("key-dash", "/stats",
                                        arrival_time=0.0)
        assert response.status == 200
        assert response.body["gaps"]["records_written"] > 0


class TestBreakerAwareShedding:
    def test_503_retry_after_covers_the_breaker_cooldown(self):
        service = build_chaos_service("none", breaker_threshold=1,
                                      breaker_reset=1800.0)
        service.collect_once()
        breaker = service.executors["sps"].breaker
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert service.breaker_cooldown() == pytest.approx(1800.0)

        frontend = service.frontend(tenants=[_dash_tenant()], workers=1,
                                    queue_depth=1, shed_cooldown=5.0)
        accepted = frontend.submit("key-dash", "/stats", arrival_time=0.0)
        shed = frontend.submit("key-dash", "/stats", arrival_time=0.0)
        response = shed.result(0)
        assert response.status == 503
        # the hint is the breaker's cool-down, not the 5s shed window
        assert response.body["retry_after"] == pytest.approx(1800.0)
        assert frontend.snapshot()["state"] == SHEDDING

        # once the breaker cools off the hint falls back to the shed
        # window remainder
        service.cloud.clock.advance(1800.0)
        assert service.breaker_cooldown() == 0.0
        late = frontend.submit("key-dash", "/stats",
                               arrival_time=1.0).result(0)
        assert late.status == 503
        assert late.body["retry_after"] == pytest.approx(4.0)

        with frontend:  # drain the one admitted request
            assert accepted.result(10.0).status == 200
