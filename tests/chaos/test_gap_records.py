"""Gap-record archival: terminal failures leave explicit, queryable holes."""

import tempfile
from pathlib import Path

from repro import AccountPool
from repro.cloudsim import FaultInjector, FaultPlan, FaultWindow
from repro.core import (
    AdvisorCollector,
    CircuitBreaker,
    CollectionReport,
    GAP_QUOTA_EXHAUSTED,
    GAP_RETRIES_EXHAUSTED,
    GAPS_TABLE,
    PriceCollector,
    ResilientExecutor,
    RetryPolicy,
    SpotLakeArchive,
    SpsCollector,
    plan_for_catalog,
)
from repro.timeseries import dump_store

from .conftest import build_tiny_cloud


def outage(cloud, operation="*", hours=24.0, kind="internal"):
    """Arm ``cloud`` with a full outage window over the next ``hours``."""
    window = FaultWindow(cloud.clock.now(),
                         cloud.clock.now() + hours * 3600.0,
                         operation=operation, kind=kind)
    cloud.faults = FaultInjector(FaultPlan(windows=(window,)), cloud.clock)
    return cloud


def executor_for(cloud, source, max_attempts=2, threshold=100):
    return ResilientExecutor(
        source, cloud.clock,
        RetryPolicy(max_attempts=max_attempts, base_delay=1.0, jitter=0.0),
        CircuitBreaker(cloud.clock, failure_threshold=threshold))


class TestArchiveGapTable:
    def test_gap_table_is_lazy(self):
        archive = SpotLakeArchive()
        assert archive.gaps is None
        assert archive.gap_count() == 0
        assert archive.gap_history() == []
        assert GAPS_TABLE not in archive.stats()

    def test_put_gap_materializes_the_table(self):
        archive = SpotLakeArchive()
        archive.put_gap("sps", "m5.large@r1/cap=1", "retries-exhausted",
                        3, 100.0)
        assert archive.gaps is not None
        assert archive.gap_count() == 1
        assert GAPS_TABLE in archive.stats()

    def test_gap_history_filters_by_source(self):
        archive = SpotLakeArchive()
        archive.put_gap("sps", "q1", "retries-exhausted", 3, 100.0)
        archive.put_gap("advisor", "snapshot", "breaker-open", 0, 200.0)
        sps_gaps = archive.gap_history({"Source": "sps"})
        assert len(sps_gaps) == 1
        assert sps_gaps[0].dimension_dict["Key"] == "q1"
        assert archive.gap_history({"Source": "advisor"})[0].value == 0

    def test_gaps_survive_snapshot_round_trip(self):
        archive = SpotLakeArchive()
        archive.put_gap("price", "sweep", "retries-exhausted", 2, 50.0)
        with tempfile.TemporaryDirectory() as tmp:
            dump_store(archive.store, tmp)
            assert (Path(tmp) / "gaps.jsonl").exists()


class TestCollectorGaps:
    def test_sps_outage_archives_one_gap_per_query(self):
        cloud = outage(build_tiny_cloud(), "sps")
        archive = SpotLakeArchive()
        plan = plan_for_catalog(cloud.catalog)
        collector = SpsCollector(cloud, archive, AccountPool(2), plan,
                                 resilience=executor_for(cloud, "sps"))
        report = collector.collect()
        assert report.queries_issued == plan.optimized_query_count
        assert report.queries_failed == plan.optimized_query_count
        assert report.gaps == plan.optimized_query_count
        assert archive.gap_count() == plan.optimized_query_count
        assert archive.stats()["sps"]["records_written"] == 0

    def test_advisor_outage_archives_snapshot_gap(self):
        cloud = outage(build_tiny_cloud(), "advisor")
        archive = SpotLakeArchive()
        collector = AdvisorCollector(
            cloud, archive, resilience=executor_for(cloud, "advisor"))
        report = collector.collect()
        assert report.gaps == 1 and report.queries_failed == 1
        gap = archive.gap_history({"Source": "advisor"})[0]
        assert gap.dimension_dict["Key"] == "snapshot"
        assert gap.dimension_dict["Reason"] == GAP_RETRIES_EXHAUSTED

    def test_price_outage_archives_sweep_gap(self):
        cloud = outage(build_tiny_cloud(), "price")
        archive = SpotLakeArchive()
        collector = PriceCollector(
            cloud, archive, resilience=executor_for(cloud, "price"))
        report = collector.collect()
        assert report.gaps == 1
        assert archive.gap_history({"Source": "price"})[0].value == 2

    def test_transient_fault_cleared_by_retry_leaves_no_gap(self):
        """A fault window shorter than the first backoff: the retry lands
        after the outage and succeeds, so nothing is failed or holed."""
        cloud = build_tiny_cloud()
        window = FaultWindow(cloud.clock.now(), cloud.clock.now() + 0.5,
                             operation="sps", kind="throttle")
        cloud.faults = FaultInjector(FaultPlan(windows=(window,)),
                                     cloud.clock)
        archive = SpotLakeArchive()
        plan = plan_for_catalog(cloud.catalog)
        collector = SpsCollector(cloud, archive, AccountPool(2), plan,
                                 resilience=executor_for(cloud, "sps",
                                                         max_attempts=3))
        report = collector.collect()
        assert report.queries_failed == 0
        assert report.gaps == 0
        assert report.retries >= 1
        assert archive.gap_count() == 0
        assert report.records_written > 0

    def test_quota_exhaustion_becomes_gap_not_crash(self):
        cloud = build_tiny_cloud()
        archive = SpotLakeArchive()
        plan = plan_for_catalog(cloud.catalog)
        starved = AccountPool(1, quota=1)
        collector = SpsCollector(cloud, archive, starved, plan,
                                 resilience=executor_for(cloud, "sps"))
        report = collector.collect()
        assert report.queries_failed == plan.optimized_query_count - 1
        assert report.gaps == report.queries_failed
        reasons = {g.dimension_dict["Reason"]
                   for g in archive.gap_history({"Source": "sps"})}
        assert reasons == {GAP_QUOTA_EXHAUSTED}

    def test_quota_failover_to_sibling_account_is_not_a_failure(self):
        """The satellite audit: a query the first account cannot afford but
        a sibling can must count as neither failed nor double-issued."""
        cloud = build_tiny_cloud()
        archive = SpotLakeArchive()
        plan = plan_for_catalog(cloud.catalog)
        # quota 1 per account, one account per planned query: every query
        # after the first fails over to a fresh sibling and succeeds
        pool = AccountPool(plan.optimized_query_count, quota=1)
        collector = SpsCollector(cloud, archive, pool, plan,
                                 resilience=executor_for(cloud, "sps"))
        report = collector.collect()
        assert report.queries_issued == plan.optimized_query_count
        assert report.queries_failed == 0
        assert report.gaps == 0
        assert report.accounts_used == plan.optimized_query_count


class TestReportAccounting:
    def test_merge_sums_resilience_fields(self):
        a = CollectionReport(queries_issued=2, queries_failed=1,
                             records_written=5, accounts_used=2, retries=3,
                             gaps=1, breaker_trips=1)
        b = CollectionReport(queries_issued=1, queries_failed=0,
                             records_written=2, accounts_used=4, retries=2,
                             gaps=0, breaker_trips=0)
        merged = a.merge(b)
        assert merged.queries_issued == 3
        assert merged.queries_failed == 1
        assert merged.records_written == 7
        assert merged.accounts_used == 4  # max, not sum
        assert merged.retries == 5
        assert merged.gaps == 1
        assert merged.breaker_trips == 1

    def test_legacy_collector_without_resilience_unchanged(self):
        cloud = build_tiny_cloud()
        archive = SpotLakeArchive()
        plan = plan_for_catalog(cloud.catalog)
        starved = AccountPool(1, quota=1)
        report = SpsCollector(cloud, archive, starved, plan).collect()
        assert report.queries_failed == plan.optimized_query_count - 1
        assert report.gaps == 0          # no resilience layer, no gaps
        assert archive.gap_count() == 0
