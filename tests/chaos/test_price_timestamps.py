"""Regression: a retried price sweep stamps rows with the *retry* time.

The price collector's sweep reads the clock once per attempt.  An early
version hoisted the timestamp out of the resilient call, so a sweep that
faulted and succeeded on retry archived rows stamped *before* the
backoff it had just waited through -- misordered against the gap records
and invisible to "data is at most N minutes stale" audits.  These tests
pin the contract documented on :meth:`PriceCollector._sweep`: the stamp
is read after the fault hook, inside the retried function.
"""

from repro.cloudsim import FaultInjector, FaultPlan, FaultWindow
from repro.core import (
    CircuitBreaker,
    PRICE_TABLE,
    PriceCollector,
    ResilientExecutor,
    RetryPolicy,
    SpotLakeArchive,
)

from .conftest import build_tiny_cloud


def _price_executor(cloud, base_delay=600.0):
    return ResilientExecutor(
        "price", cloud.clock,
        RetryPolicy(max_attempts=3, base_delay=base_delay, jitter=0.0),
        CircuitBreaker(cloud.clock, failure_threshold=100))


def _collector_with_outage(outage_seconds):
    """A price collector whose first attempt faults, second succeeds."""
    cloud = build_tiny_cloud()
    start = cloud.clock.now()
    window = FaultWindow(start, start + outage_seconds, operation="price")
    cloud.faults = FaultInjector(FaultPlan(windows=(window,)), cloud.clock)
    archive = SpotLakeArchive()
    collector = PriceCollector(cloud, archive,
                               resilience=_price_executor(cloud))
    return cloud, archive, collector


class TestRetriedSweepTimestamps:
    def test_rows_stamp_the_post_backoff_time(self):
        cloud, archive, collector = _collector_with_outage(1.0)
        before = cloud.clock.now()
        report = collector.collect()
        after = cloud.clock.now()

        assert report.retries == 1
        assert report.records_written > 0
        assert after > before  # the backoff advanced the sim clock
        stamps = {r.time for r in archive.store.table(PRICE_TABLE).scan()}
        # every archived row carries the retry-attempt time, never the
        # pre-fault time the failed first attempt observed
        assert stamps == {after}

    def test_prices_match_the_stamped_instant(self):
        """The stamp is not merely late -- the *values* are sampled at it.

        Price engines are time-varying; rows stamped T must hold the
        price in force at T, so stamp and value have to come from the
        same post-backoff read."""
        cloud, archive, collector = _collector_with_outage(1.0)
        collector.collect()
        stamp = cloud.clock.now()
        for record in archive.store.table(PRICE_TABLE).scan():
            dims = record.dimension_dict
            expected = cloud.pricing.spot_price(
                dims["InstanceType"], dims["Region"], stamp,
                dims["AvailabilityZone"])
            assert record.value == expected

    def test_clean_sweep_stamps_the_call_time(self):
        cloud = build_tiny_cloud()
        archive = SpotLakeArchive()
        collector = PriceCollector(cloud, archive,
                                   resilience=_price_executor(cloud))
        now = cloud.clock.now()
        report = collector.collect()
        assert report.retries == 0
        assert {r.time for r in archive.store.table(PRICE_TABLE).scan()} == {now}
