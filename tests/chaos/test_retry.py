"""Retry-policy and resilient-executor tests: exact deterministic delays."""

import pytest

from repro._util import stable_uniform
from repro.cloudsim import (
    QuotaExceededError,
    SimulationClock,
    ThrottlingError,
)
from repro.core import (
    CallOutcome,
    CircuitBreaker,
    GAP_QUOTA_EXHAUSTED,
    GAP_RETRIES_EXHAUSTED,
    ResilientExecutor,
    RetryPolicy,
)


def flaky(failures, value=42, error=ThrottlingError):
    """A callable failing ``failures`` times before returning ``value``."""
    state = {"left": failures, "calls": 0}

    def fn():
        state["calls"] += 1
        if state["left"] > 0:
            state["left"] -= 1
            raise error("injected")
        return value

    fn.state = state
    return fn


class TestRetryPolicy:
    def test_unjittered_schedule_is_exact_exponential(self):
        policy = RetryPolicy(max_attempts=4, base_delay=2.0, multiplier=2.0,
                             max_delay=60.0, jitter=0.0)
        assert policy.schedule("sps") == [2.0, 4.0, 8.0]

    def test_max_delay_caps_the_backoff(self):
        policy = RetryPolicy(max_attempts=6, base_delay=10.0, multiplier=3.0,
                             max_delay=45.0, jitter=0.0)
        assert policy.schedule("x") == [10.0, 30.0, 45.0, 45.0, 45.0]

    def test_jittered_delay_is_reproducible_and_exact(self):
        policy = RetryPolicy(base_delay=2.0, jitter=0.1, seed=9)
        unit = stable_uniform("retry-jitter", 9, 1, "sps", "q1")
        expected = min(2.0 * 2.0 ** 1, 60.0) * (1.0 + 0.1 * (2.0 * unit - 1.0))
        assert policy.delay(1, "sps", "q1") == expected
        assert policy.delay(1, "sps", "q1") == policy.delay(1, "sps", "q1")

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(base_delay=4.0, multiplier=1.0, jitter=0.25,
                             seed=0)
        for attempt in range(20):
            delay = policy.delay(attempt, "k", attempt)
            assert 4.0 * 0.75 <= delay <= 4.0 * 1.25

    def test_distinct_keys_draw_distinct_jitter(self):
        policy = RetryPolicy(jitter=0.2, seed=1)
        delays = {policy.delay(0, "sps", q) for q in range(50)}
        assert len(delays) > 1

    def test_schedule_differs_across_seeds(self):
        a = RetryPolicy(jitter=0.2, seed=1).schedule("sps")
        b = RetryPolicy(jitter=0.2, seed=2).schedule("sps")
        assert a != b


class TestResilientExecutor:
    def _executor(self, clock=None, **policy_kwargs):
        clock = clock or SimulationClock()
        policy_kwargs.setdefault("jitter", 0.0)
        policy_kwargs.setdefault("base_delay", 2.0)
        policy = RetryPolicy(**policy_kwargs)
        return ResilientExecutor("sps", clock, policy), clock

    def test_success_passes_value_through(self):
        executor, _ = self._executor()
        outcome = executor.call(("q",), lambda: "rows")
        assert outcome.ok and outcome.value == "rows"
        assert outcome.attempts == 1 and outcome.retries == 0

    def test_transient_failures_retried_until_success(self):
        executor, clock = self._executor()
        start = clock.now()
        fn = flaky(2)
        outcome = executor.call(("q",), fn)
        assert outcome.ok and outcome.value == 42
        assert outcome.attempts == 3 and outcome.retries == 2
        assert fn.state["calls"] == 3
        # backoff advanced the sim clock by exactly delay(0) + delay(1)
        assert clock.now() == start + 2.0 + 4.0
        assert outcome.errors == ["RequestLimitExceeded"] * 2

    def test_exhausted_retries_end_as_gap(self):
        executor, clock = self._executor(max_attempts=3)
        start = clock.now()
        outcome = executor.call(("q",), flaky(99))
        assert not outcome.ok
        assert outcome.gap_reason == GAP_RETRIES_EXHAUSTED
        assert outcome.attempts == 3 and outcome.retries == 2
        assert clock.now() == start + 2.0 + 4.0
        assert executor.gaps_total == 1

    def test_round_retry_budget_limits_spend(self):
        executor, _ = self._executor(max_attempts=3, round_retry_budget=1)
        executor.start_round()
        first = executor.call(("q1",), flaky(1))
        assert first.ok and first.retries == 1
        # budget is spent: the next failure gaps without any retry
        second = executor.call(("q2",), flaky(1))
        assert not second.ok and second.attempts == 1
        assert second.gap_reason == GAP_RETRIES_EXHAUSTED

    def test_start_round_resets_budget(self):
        executor, _ = self._executor(max_attempts=3, round_retry_budget=1)
        executor.start_round()
        assert not executor.call(("q",), flaky(99)).ok
        executor.start_round()
        assert executor.call(("q",), flaky(1)).ok

    def test_quota_exhaustion_is_not_retried(self):
        executor, clock = self._executor()
        start = clock.now()

        def drained():
            raise QuotaExceededError("pool drained")

        outcome = executor.call(("q",), drained)
        assert not outcome.ok
        assert outcome.gap_reason == GAP_QUOTA_EXHAUSTED
        assert outcome.attempts == 1 and outcome.retries == 0
        assert clock.now() == start  # no backoff was spent
        # quota exhaustion is an account-state fact, not a service fault:
        # it must not poison the breaker
        assert executor.breaker.trips == 0

    def test_non_cloud_exceptions_propagate(self):
        executor, _ = self._executor()

        def bug():
            raise RuntimeError("logic error")

        with pytest.raises(RuntimeError):
            executor.call(("q",), bug)

    def test_counters_accumulate_across_calls(self):
        executor, _ = self._executor(max_attempts=2)
        executor.call(("a",), flaky(1))    # 1 retry, success
        executor.call(("b",), flaky(99))   # 1 retry, gap
        stats = executor.stats()
        assert stats["calls"] == 2
        assert stats["retries"] == 2
        assert stats["gaps"] == 1
        assert executor.retries_total == 2

    def test_outcome_defaults(self):
        outcome = CallOutcome(ok=False)
        assert outcome.retries == 0 and outcome.errors == []
