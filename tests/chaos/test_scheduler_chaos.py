"""Scheduler-under-failure tests: one bad collector must not starve the rest."""

from repro.cloudsim import SimulationClock
from repro.core import CollectionScheduler, CollectionReport, RunEntry


def make_job(counter):
    def collect():
        counter.append(1)
        return CollectionReport(queries_issued=1)
    return collect


def make_raiser(error=RuntimeError("collector crashed")):
    def collect():
        raise error
    return collect


class TestFailureIsolation:
    def test_raising_job_does_not_starve_siblings(self):
        clock = SimulationClock()
        scheduler = CollectionScheduler(clock)
        ran = []
        bad = scheduler.register("bad", make_raiser(), period=600)
        good = scheduler.register("good", make_job(ran), period=600)
        count = scheduler.run_due()
        assert count == 2           # both jobs were attempted
        assert sum(ran) == 1        # the sibling actually ran
        assert bad.failures == 1 and bad.runs == 0
        assert good.runs == 1 and good.failures == 0

    def test_registration_order_does_not_matter(self):
        """The sibling runs whether it sorts before or after the crasher."""
        for order in (("bad", "good"), ("good", "bad")):
            clock = SimulationClock()
            scheduler = CollectionScheduler(clock)
            ran = []
            for name in order:
                if name == "bad":
                    scheduler.register("bad", make_raiser(), period=600)
                else:
                    scheduler.register("good", make_job(ran), period=600)
            scheduler.run_due()
            assert sum(ran) == 1

    def test_failed_round_is_visible_in_history(self):
        clock = SimulationClock()
        scheduler = CollectionScheduler(clock)
        scheduler.register("bad", make_raiser(ValueError("boom")), period=600)
        scheduler.run_due()
        entry = scheduler.history[0]
        assert entry.status == "error"
        assert "ValueError" in entry.error and "boom" in entry.error
        assert entry.name == "bad"

    def test_history_entries_unpack_as_time_name_pairs(self):
        clock = SimulationClock()
        scheduler = CollectionScheduler(clock)
        scheduler.register("a", make_job([]), period=600)
        scheduler.register("bad", make_raiser(), period=600)
        scheduler.run_due()
        names = [name for _, name in scheduler.history]
        assert names == ["a", "bad"]

    def test_failing_job_keeps_its_cadence(self):
        clock = SimulationClock()
        scheduler = CollectionScheduler(clock)
        job = scheduler.register("bad", make_raiser(), period=600)
        scheduler.run_for(1800, step=600)
        # fired (and failed) at t=0, 600, 1200, 1800 without tight-looping
        assert job.failures == 4
        assert job.next_due > clock.now()

    def test_recovery_after_transient_crash(self):
        clock = SimulationClock()
        scheduler = CollectionScheduler(clock)
        state = {"round": 0}

        def flaky_collect():
            state["round"] += 1
            if state["round"] == 1:
                raise RuntimeError("first round crashes")
            return CollectionReport(queries_issued=1)

        job = scheduler.register("flaky", flaky_collect, period=600)
        scheduler.run_for(600, step=600)
        assert job.failures == 1 and job.runs == 1
        assert job.last_report is not None
        assert job.last_error.startswith("RuntimeError")
        statuses = [entry.status for entry in scheduler.history]
        assert statuses == ["error", "ok"]

    def test_missed_rounds_counted_after_stall(self):
        clock = SimulationClock()
        scheduler = CollectionScheduler(clock)
        job = scheduler.register("a", make_job([]), period=600)
        scheduler.run_due()
        clock.advance(10_000)
        scheduler.run_due()
        # 600, 1200, ..., 9600 were skipped: 15 whole periods lost
        assert job.missed_rounds == 15
        assert job.runs == 2

    def test_no_missed_rounds_at_normal_cadence(self):
        clock = SimulationClock()
        scheduler = CollectionScheduler(clock)
        job = scheduler.register("a", make_job([]), period=600)
        scheduler.run_for(3600, step=600)
        assert job.missed_rounds == 0
        assert job.runs == 7

    def test_run_entry_defaults(self):
        entry = RunEntry(1.0, "sps")
        assert entry.status == "ok" and entry.error == ""
        t, name = entry
        assert (t, name) == (1.0, "sps")
