"""Tests for accounts and the rolling unique-query quota."""

import pytest

from repro.cloudsim import Account, AccountPool, QuotaExceededError, make_query_key
from repro.cloudsim.accounts import QUOTA_WINDOW_SECONDS


def key(i: int):
    return make_query_key([f"type-{i}"], ["r1"], 1, True)


class TestAccount:
    def test_quota_enforced(self):
        account = Account("a", quota=3)
        for i in range(3):
            account.charge(key(i), now=0.0)
        with pytest.raises(QuotaExceededError):
            account.charge(key(99), now=1.0)

    def test_repeats_are_free(self):
        """Re-issuing an already-seen query never counts (paper Sec 3.1)."""
        account = Account("a", quota=1)
        account.charge(key(0), now=0.0)
        for _ in range(10):
            account.charge(key(0), now=5.0)  # no raise
        assert account.unique_queries_used(5.0) == 1

    def test_window_expiry(self):
        account = Account("a", quota=1)
        account.charge(key(0), now=0.0)
        later = QUOTA_WINDOW_SECONDS + 1.0
        assert account.remaining(later) == 1
        account.charge(key(1), now=later)  # no raise

    def test_would_charge(self):
        account = Account("a", quota=2)
        assert account.would_charge(key(0), 0.0)
        account.charge(key(0), 0.0)
        assert not account.would_charge(key(0), 1.0)

    def test_uniqueness_is_set_based(self):
        """Order of types/regions does not create a new unique query."""
        a = make_query_key(["t1", "t2"], ["r1", "r2"], 1, True)
        b = make_query_key(["t2", "t1"], ["r2", "r1"], 1, True)
        assert a == b

    def test_capacity_changes_uniqueness(self):
        a = make_query_key(["t1"], ["r1"], 1, True)
        b = make_query_key(["t1"], ["r1"], 10, True)
        assert a != b


class TestAccountPool:
    def test_needs_at_least_one(self):
        with pytest.raises(ValueError):
            AccountPool(0)

    def test_prefers_already_charged_account(self):
        pool = AccountPool(2, quota=5)
        first = pool.acquire(key(0), 0.0)
        first.charge(key(0), 0.0)
        again = pool.acquire(key(0), 1.0)
        assert again is first

    def test_spreads_new_queries(self):
        pool = AccountPool(2, quota=2)
        used = set()
        for i in range(4):
            account = pool.acquire(key(i), 0.0)
            account.charge(key(i), 0.0)
            used.add(account.name)
        assert len(used) == 2

    def test_exhausted_pool_raises(self):
        pool = AccountPool(1, quota=1)
        account = pool.acquire(key(0), 0.0)
        account.charge(key(0), 0.0)
        with pytest.raises(QuotaExceededError):
            pool.acquire(key(1), 0.0)

    def test_size_for(self):
        assert AccountPool.size_for(2226, quota=50) == 45
        assert AccountPool.size_for(50, quota=50) == 1
        assert AccountPool.size_for(51, quota=50) == 2

    def test_total_remaining(self):
        pool = AccountPool(3, quota=10)
        assert pool.total_remaining(0.0) == 30
