"""Tests for the spot instance advisor engine."""

import pytest

from repro.cloudsim import bucket_index, bucket_label
from repro.cloudsim.advisor import INTERRUPTION_BUCKETS


class TestBuckets:
    @pytest.mark.parametrize("ratio,label", [
        (0.0, "<5%"), (0.049, "<5%"), (0.05, "5-10%"), (0.12, "10-15%"),
        (0.17, "15-20%"), (0.20, ">20%"), (0.9, ">20%"),
    ])
    def test_bucket_label(self, ratio, label):
        assert bucket_label(ratio) == label

    def test_bucket_index_range(self):
        assert bucket_index(0.0) == 0
        assert bucket_index(10.0) == len(INTERRUPTION_BUCKETS) - 1


class TestAdvisorEngine:
    def test_entry_fields(self, cloud):
        t = cloud.clock.start + 10 * 86400.0
        entry = cloud.advisor.entry("m5.large", "us-east-1", t)
        assert entry.instance_type == "m5.large"
        assert entry.region == "us-east-1"
        assert 0 <= entry.interruption_bucket <= 4
        assert entry.interruption_label == bucket_label(
            cloud.advisor.interruption_ratio("m5.large", "us-east-1", t))
        assert 0 <= entry.savings_percent <= 100

    def test_snapshot_covers_all_offerings(self, cloud):
        snapshot = cloud.advisor.web_snapshot(cloud.clock.start)
        offering = cloud.catalog.offering_map()
        expected = sum(len(regions) for regions in offering.values())
        assert len(snapshot) == expected

    def test_value_frozen_between_refreshes(self, cloud):
        """The advisor republishes on a slow cadence; the reported ratio is
        constant between refresh instants (Figure 10's long intervals)."""
        advisor = cloud.advisor
        t = cloud.clock.start + 20 * 86400.0
        frozen_at = advisor.snapshot_time("m5.large", "us-east-1", t)
        later = frozen_at + 3600.0  # an hour after the refresh
        assert advisor.interruption_ratio("m5.large", "us-east-1", later) == \
            advisor.interruption_ratio("m5.large", "us-east-1", frozen_at + 7200.0)

    def test_refresh_cadence_days(self, cloud):
        advisor = cloud.advisor
        period = advisor._refresh_period("m5.large", "us-east-1")
        assert 4 * 86400.0 <= period <= 12 * 86400.0

    def test_snapshot_time_not_in_future(self, cloud):
        advisor = cloud.advisor
        t = cloud.clock.start + 45 * 86400.0
        assert advisor.snapshot_time("c5.xlarge", "eu-west-1", t) <= t

    def test_savings_uses_pricing_when_available(self, cloud):
        t = cloud.clock.start + 10 * 86400.0
        itype = cloud.catalog.instance_type("m5.large")
        savings = cloud.advisor.savings_percent(itype, "us-east-1", t)
        frozen = cloud.advisor.snapshot_time("m5.large", "us-east-1", t)
        spot = cloud.pricing.spot_price(itype, "us-east-1", frozen)
        expected = round(100 * (1 - spot / itype.on_demand_price))
        assert savings == expected
