"""Calibration regression tests: the simulated world keeps matching the
paper's published distributions (Table 2 and the Figure 3 family effects).

These are the guardrails for anyone touching the market constants: if a
change moves a marginal distribution off its paper target, these fail.
"""

import numpy as np
import pytest

from repro.analysis.scores import interruption_free_score


@pytest.fixture(scope="module")
def samples(cloud):
    """Scores for a deterministic pool/time sample grid."""
    rng = np.random.default_rng(1)
    pools = cloud.catalog.all_pools()
    idx = rng.choice(len(pools), 1500, replace=False)
    t0 = cloud.clock.start
    out = []
    for i in idx:
        itype, region, zone = pools[i]
        category = cloud.catalog.instance_type(itype).category
        for day in (10, 90, 170):
            ts = t0 + day * 86400.0
            sps = cloud.placement.zone_score(itype, region, zone, ts)
            ifs = interruption_free_score(
                cloud.advisor.interruption_ratio(itype, region, ts))
            out.append((category, sps, ifs))
    return out


class TestTable2Targets:
    def test_sps_distribution(self, samples):
        """Paper: 87.88% / 3.81% / 8.31% for scores 3 / 2 / 1."""
        scores = np.array([s for _, s, _ in samples])
        share3 = np.mean(scores == 3)
        share2 = np.mean(scores == 2)
        share1 = np.mean(scores == 1)
        assert 0.82 < share3 < 0.93
        assert 0.01 < share2 < 0.08
        assert 0.04 < share1 < 0.14
        assert share1 > share2  # the distinctive inversion of Table 2

    def test_if_distribution(self, samples):
        """Paper: 33.05 / 25.92 / 13.86 / 6.33 / 20.84 % for 3.0 .. 1.0."""
        scores = np.array([f for _, _, f in samples])
        targets = {3.0: 0.3305, 2.5: 0.2592, 2.0: 0.1386,
                   1.5: 0.0633, 1.0: 0.2084}
        for value, target in targets.items():
            share = float(np.mean(scores == value))
            assert abs(share - target) < 0.08, (value, share, target)


class TestFigure3FamilyEffects:
    def test_accelerated_below_average(self, samples):
        """Paper: accelerated 12.07% below average SPS, 34.98% below IF."""
        all_sps = np.mean([s for _, s, _ in samples])
        all_if = np.mean([f for _, _, f in samples])
        accel_sps = np.mean([s for c, s, _ in samples if c == "accelerated"])
        accel_if = np.mean([f for c, _, f in samples if c == "accelerated"])
        sps_gap = 1 - accel_sps / all_sps
        if_gap = 1 - accel_if / all_if
        assert 0.05 < sps_gap < 0.30
        assert 0.20 < if_gap < 0.50
        assert if_gap > sps_gap  # the IF penalty is the larger one

    def test_overall_averages(self, samples):
        """Paper: mean SPS 2.8, mean interruption-free score 2.22."""
        assert abs(np.mean([s for _, s, _ in samples]) - 2.8) < 0.15
        assert abs(np.mean([f for _, _, f in samples]) - 2.22) < 0.15
