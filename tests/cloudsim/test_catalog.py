"""Tests for the instance/region/zone catalog."""

import pytest

from repro.cloudsim import Catalog, UnknownInstanceTypeError, UnknownRegionError
from repro.cloudsim.catalog import SIZE_LADDER


class TestPaperScale:
    """The catalog matches the paper's headline numbers exactly."""

    def test_547_types_17_regions_63_zones(self, cloud):
        summary = cloud.catalog.summary()
        assert summary["instance_types"] == 547
        assert summary["regions"] == 17
        assert summary["availability_zones"] == 63

    def test_every_type_offered_somewhere(self, cloud):
        offering = cloud.catalog.offering_map()
        assert len(offering) == 547
        assert all(offering.values())


class TestInstanceType:
    def test_name_composition(self, cloud):
        itype = cloud.catalog.instance_type("p3.2xlarge")
        assert itype.family.name == "p3"
        assert itype.size == "2xlarge"
        assert itype.class_letter == "P"
        assert itype.category == "accelerated"

    def test_vcpus_scale_with_size(self, cloud):
        small = cloud.catalog.instance_type("m5.large")
        big = cloud.catalog.instance_type("m5.24xlarge")
        assert big.vcpus == 48 * small.vcpus

    def test_metal_matches_largest_virtual(self, cloud):
        metal = cloud.catalog.instance_type("m5.metal")
        largest = cloud.catalog.instance_type("m5.24xlarge")
        assert metal.vcpus == largest.vcpus

    def test_accelerator_premium_raises_price(self, cloud):
        gpu = cloud.catalog.instance_type("p3.2xlarge")
        cpu = cloud.catalog.instance_type("c5.2xlarge")
        assert gpu.on_demand_price > cpu.on_demand_price

    def test_memory_by_category(self, cloud):
        memory = cloud.catalog.instance_type("r5.xlarge")
        compute = cloud.catalog.instance_type("c5.xlarge")
        assert memory.memory_gib > compute.memory_gib

    def test_size_rank_monotone(self):
        ranks = [SIZE_LADDER.index(s) for s in ("large", "xlarge", "2xlarge", "16xlarge")]
        assert ranks == sorted(ranks)

    def test_unknown_type_raises(self, cloud):
        with pytest.raises(UnknownInstanceTypeError):
            cloud.catalog.instance_type("z999.mega")


class TestRegions:
    def test_zone_names(self, cloud):
        region = cloud.catalog.region("us-east-1")
        assert region.zones[0] == "us-east-1a"
        assert len(region.zones) == region.az_count

    def test_unknown_region_raises(self, cloud):
        with pytest.raises(UnknownRegionError):
            cloud.catalog.region("mars-north-1")


class TestOfferings:
    def test_deterministic(self):
        a = Catalog(seed=3)
        b = Catalog(seed=3)
        assert a.offering_map() == b.offering_map()

    def test_seed_changes_offerings(self):
        a = Catalog(seed=3)
        b = Catalog(seed=4)
        assert a.offering_map() != b.offering_map()

    def test_zones_subset_of_region(self, cloud):
        catalog = cloud.catalog
        region = catalog.region("eu-west-1")
        for name in ("m5.large", "p3.2xlarge", "t3.micro"):
            zones = catalog.supported_zones(name, region)
            assert set(zones) <= set(region.zones)

    def test_new_families_sparser(self, cloud):
        catalog = cloud.catalog
        old = len(catalog.regions_offering("m5.large"))
        new = len(catalog.regions_offering("dl1.24xlarge"))
        assert new < old

    def test_all_pools_consistent_with_offering_map(self, cloud):
        catalog = cloud.catalog
        pools = catalog.all_pools()
        offering = catalog.offering_map()
        from collections import Counter
        counted = Counter((t, r) for t, r, _z in pools)
        for (t, r), count in counted.items():
            assert offering[t][r] == count

    def test_classes_in_paper_order(self, cloud):
        classes = cloud.catalog.classes
        assert classes[:4] == ["T", "M", "A", "C"]
        assert classes.index("P") < classes.index("I")

    def test_tiny_catalog_shape(self, tiny_catalog):
        assert tiny_catalog.summary()["instance_types"] == 3
        assert tiny_catalog.summary()["availability_zones"] == 5
