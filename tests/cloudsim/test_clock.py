"""Tests for the simulation clock."""

import pytest

from repro.cloudsim import SimulationClock, PAPER_WINDOW_START
from repro.cloudsim.clock import SECONDS_PER_DAY


class TestSimulationClock:
    def test_starts_at_paper_window(self):
        clock = SimulationClock()
        assert clock.now() == PAPER_WINDOW_START
        assert clock.datetime().isoformat().startswith("2022-01-01T00:00:00")

    def test_advance(self):
        clock = SimulationClock()
        clock.advance(30.0)
        clock.advance_minutes(2)
        assert clock.now() == PAPER_WINDOW_START + 150.0

    def test_advance_days(self):
        clock = SimulationClock()
        clock.advance_days(2.5)
        assert clock.elapsed() == 2.5 * SECONDS_PER_DAY
        assert clock.elapsed_days() == 2.5

    def test_cannot_move_backwards(self):
        clock = SimulationClock()
        with pytest.raises(ValueError):
            clock.advance(-1.0)
        with pytest.raises(ValueError):
            clock.set(PAPER_WINDOW_START - 1.0)

    def test_set_forward(self):
        clock = SimulationClock()
        clock.set(PAPER_WINDOW_START + 100.0)
        assert clock.now() == PAPER_WINDOW_START + 100.0

    def test_custom_start(self):
        clock = SimulationClock(start=1000.0)
        assert clock.start == 1000.0
        assert clock.elapsed() == 0.0
