"""Tests for the boto3-like client and its constraint enforcement."""

import pytest

from repro.cloudsim import (
    Account,
    QuotaExceededError,
    RequestNotFoundError,
    SimulatedCloud,
    UnknownRegionError,
    ValidationError,
)
from repro.cloudsim.ec2_api import MAX_SPS_RESULTS, PRICE_HISTORY_MAX_DAYS


@pytest.fixture()
def client(fresh_cloud):
    return fresh_cloud.client(Account("test", quota=100))


class TestPlacementScores:
    def test_basic_query(self, client):
        rows = client.get_spot_placement_scores(["m5.large"], ["us-east-1"])
        assert len(rows) == 1
        assert rows[0]["Region"] == "us-east-1"
        assert 1 <= rows[0]["Score"] <= 10

    def test_single_az_rows(self, fresh_cloud, client):
        rows = client.get_spot_placement_scores(
            ["m5.large"], ["us-east-1"], single_availability_zone=True)
        zones = fresh_cloud.catalog.supported_zones("m5.large", "us-east-1")
        assert {r["AvailabilityZoneId"] for r in rows} <= set(zones)

    def test_result_cap_ten(self, fresh_cloud, client):
        regions = [r.code for r in fresh_cloud.catalog.regions]
        rows = client.get_spot_placement_scores(
            ["m5.large"], regions, single_availability_zone=True)
        assert len(rows) == MAX_SPS_RESULTS

    def test_max_results_validated(self, client):
        with pytest.raises(ValidationError):
            client.get_spot_placement_scores(["m5.large"], ["us-east-1"],
                                             max_results=11)

    def test_quota_enforced_but_repeats_free(self, fresh_cloud):
        client = fresh_cloud.client(Account("tiny", quota=2))
        client.get_spot_placement_scores(["m5.large"], ["us-east-1"])
        client.get_spot_placement_scores(["m5.large"], ["us-east-1"])  # repeat
        client.get_spot_placement_scores(["c5.large"], ["us-east-1"])
        with pytest.raises(QuotaExceededError):
            client.get_spot_placement_scores(["r5.large"], ["us-east-1"])

    def test_empty_arguments_rejected(self, client):
        with pytest.raises(ValidationError):
            client.get_spot_placement_scores([], ["us-east-1"])
        with pytest.raises(ValidationError):
            client.get_spot_placement_scores(["m5.large"], [])
        with pytest.raises(ValidationError):
            client.get_spot_placement_scores(["m5.large"], ["us-east-1"],
                                             target_capacity=0)

    def test_unknown_region_rejected(self, client):
        with pytest.raises(UnknownRegionError):
            client.get_spot_placement_scores(["m5.large"], ["nowhere-1"])


class TestPriceHistory:
    def test_returns_change_points(self, fresh_cloud, client):
        now = fresh_cloud.clock.now()
        fresh_cloud.clock.advance_days(30)
        rows = client.describe_spot_price_history(
            ["m5.large"], now, fresh_cloud.clock.now(), region="us-east-1")
        assert rows
        assert all(r["SpotPrice"] > 0 for r in rows)
        times = [r["Timestamp"] for r in rows]
        assert times == sorted(times)

    def test_three_month_limit(self, fresh_cloud, client):
        fresh_cloud.clock.advance_days(PRICE_HISTORY_MAX_DAYS + 10)
        now = fresh_cloud.clock.now()
        with pytest.raises(ValidationError):
            client.describe_spot_price_history(
                ["m5.large"], now - (PRICE_HISTORY_MAX_DAYS + 5) * 86400.0,
                now, region="us-east-1")

    def test_region_or_zone_required(self, fresh_cloud, client):
        now = fresh_cloud.clock.now()
        with pytest.raises(ValidationError):
            client.describe_spot_price_history(["m5.large"], now, now)


class TestSpotRequests:
    def test_request_lifecycle_via_api(self, fresh_cloud, client):
        rid = client.request_spot_instances("m5.large", "us-east-1a", 0.10,
                                            persistent=True)
        status = client.describe_spot_instance_requests([rid])[0]
        assert status["SpotInstanceRequestId"] == rid
        assert status["State"] in ("pending-evaluation", "holding")
        fresh_cloud.clock.advance(3600.0)
        later = client.describe_spot_instance_requests([rid])[0]
        assert later["State"] in ("pending-evaluation", "holding",
                                  "fulfilled", "terminal")

    def test_cancel(self, fresh_cloud, client):
        rid = client.request_spot_instances("m5.large", "us-east-1a", 0.10)
        fresh_cloud.clock.advance(60.0)
        client.cancel_spot_instance_requests([rid])
        fresh_cloud.clock.advance(1.0)
        assert client.describe_spot_instance_requests([rid])[0]["State"] == "terminal"

    def test_unknown_request_raises(self, client):
        with pytest.raises(RequestNotFoundError):
            client.describe_spot_instance_requests(["sir-ffffffff"])


class TestOfferings:
    def test_zone_offerings(self, fresh_cloud, client):
        rows = client.describe_instance_type_offerings("us-east-1")
        assert rows
        assert all(row["Location"].startswith("us-east-1") for row in rows)

    def test_region_offerings(self, client):
        rows = client.describe_instance_type_offerings(
            "us-east-1", location_type="region")
        assert all(row["Location"] == "us-east-1" for row in rows)

    def test_bad_location_type(self, client):
        with pytest.raises(ValidationError):
            client.describe_instance_type_offerings("us-east-1",
                                                    location_type="planet")


class TestAdvisorNotInApi:
    def test_advisor_web_only(self, fresh_cloud, client):
        """The advisor has no client method -- web snapshot only."""
        assert not hasattr(client, "describe_spot_advisor")
        snapshot = fresh_cloud.advisor_web_snapshot()
        assert snapshot
