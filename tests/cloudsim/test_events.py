"""Tests for configurable capacity events."""

import pytest

from repro.cloudsim import CapacityEvent, Catalog, JUNE_2_EVENT, SpotMarket
from repro.cloudsim.events import default_events, total_depth


class TestCapacityEvent:
    def test_validation(self):
        with pytest.raises(ValueError):
            CapacityEvent(10, 5, 0.1)
        with pytest.raises(ValueError):
            CapacityEvent(0, 1, 0.1, type_fraction=1.5)
        with pytest.raises(ValueError):
            CapacityEvent(0, 1, -0.1)

    def test_outside_window_zero(self):
        event = CapacityEvent(10, 12, 0.2, type_fraction=1.0)
        assert event.depth_at(0, "m5.large", 9.9) == 0.0
        assert event.depth_at(0, "m5.large", 12.1) == 0.0

    def test_plateau_depth(self):
        event = CapacityEvent(10, 14, 0.2, type_fraction=1.0, ramp_days=1.0)
        assert event.depth_at(0, "m5.large", 12.0) == pytest.approx(0.2)

    def test_ramps(self):
        event = CapacityEvent(10, 14, 0.2, type_fraction=1.0, ramp_days=1.0)
        assert event.depth_at(0, "m5.large", 10.5) == pytest.approx(0.1)
        assert event.depth_at(0, "m5.large", 13.5) == pytest.approx(0.1)

    def test_membership_stable(self):
        event = CapacityEvent(0, 10, 0.2, type_fraction=0.5, label="e")
        first = event.affects(0, "m5.large")
        assert all(event.affects(0, "m5.large") == first for _ in range(5))

    def test_membership_fraction(self):
        event = CapacityEvent(0, 10, 0.2, type_fraction=0.5, label="e")
        names = [f"type-{i}" for i in range(600)]
        hits = sum(event.affects(0, n) for n in names)
        assert 240 < hits < 360

    def test_total_depth_sums_overlaps(self):
        events = [CapacityEvent(0, 10, 0.1, 1.0, ramp_days=0.0, label="a"),
                  CapacityEvent(5, 15, 0.2, 1.0, ramp_days=0.0, label="b")]
        assert total_depth(events, 0, "x", 7.0) == pytest.approx(0.3)


class TestMarketIntegration:
    def test_default_schedule_is_june2(self):
        assert default_events() == [JUNE_2_EVENT]

    def test_custom_event_schedule(self):
        catalog = Catalog(seed=0)
        quiet = SpotMarket(catalog, seed=0, events=[])
        stormy = SpotMarket(catalog, seed=0, events=[
            CapacityEvent(50, 52, 0.5, type_fraction=1.0, label="storm")])
        t_storm = quiet.epoch + 51 * 86400.0
        pool = catalog.all_pools()[0]
        assert stormy.headroom(*pool, t_storm) < quiet.headroom(*pool, t_storm)
        t_calm = quiet.epoch + 40 * 86400.0
        assert stormy.headroom(*pool, t_calm) == quiet.headroom(*pool, t_calm)

    def test_event_visible_in_scores(self):
        """A deep market-wide event pushes placement scores down."""
        catalog = Catalog(seed=0)
        market = SpotMarket(catalog, seed=0, events=[
            CapacityEvent(50, 52, 0.5, type_fraction=1.0, label="storm")])
        from repro.cloudsim import PlacementScoreEngine
        engine = PlacementScoreEngine(market)
        pools = catalog.all_pools()[::300]
        during = sum(engine.zone_score(*p, market.epoch + 51 * 86400.0)
                     for p in pools)
        before = sum(engine.zone_score(*p, market.epoch + 40 * 86400.0)
                     for p in pools)
        assert during < before
