"""Tests for the spot request lifecycle state machine."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.cloudsim import (
    ALLOWED_TRANSITIONS,
    RequestState,
    SimulatedCloud,
    UnsupportedOfferingError,
    ValidationError,
)
from repro.cloudsim.lifecycle import (
    continuous_if,
    continuous_sps,
    interruption_rate_per_hour,
    not_fulfilled_probability,
    weibull_scale_for_rate,
)
from repro.cloudsim.placement import THRESHOLD_2, THRESHOLD_3


def submit(cloud, itype="m5.large", zone="us-east-1a", **kwargs):
    return cloud.request_simulator.submit(
        itype, zone.rstrip("abcdef"), zone, bid_price=1.0,
        created_at=cloud.clock.now(), **kwargs)


class TestStateMachine:
    def test_timeline_uses_legal_transitions(self, fresh_cloud):
        for i in range(30):
            request = submit(fresh_cloud, persistent=True)
            previous = RequestState.PENDING_EVALUATION
            for event in request.events:
                assert event.state in ALLOWED_TRANSITIONS[previous]
                previous = event.state

    def test_state_before_submission_raises(self, fresh_cloud):
        request = submit(fresh_cloud)
        with pytest.raises(ValidationError):
            request.state_at(request.created_at - 1.0)

    def test_initial_state_pending(self, fresh_cloud):
        request = submit(fresh_cloud)
        assert request.state_at(request.created_at) in (
            RequestState.PENDING_EVALUATION, RequestState.HOLDING)

    def test_unsupported_zone_raises(self, fresh_cloud):
        catalog = fresh_cloud.catalog
        itype = "dl1.24xlarge"
        offered = {r.code for r in catalog.regions_offering(itype)}
        missing_region = next(r for r in catalog.regions
                              if r.code not in offered)
        with pytest.raises(UnsupportedOfferingError):
            submit(fresh_cloud, itype=itype, zone=missing_region.zones[0])

    def test_nonpositive_bid_raises(self, fresh_cloud):
        with pytest.raises(ValidationError):
            fresh_cloud.request_simulator.submit(
                "m5.large", "us-east-1", "us-east-1a", bid_price=0.0,
                created_at=fresh_cloud.clock.now())

    def test_cancel_terminates(self, fresh_cloud):
        request = submit(fresh_cloud)
        fresh_cloud.request_simulator.cancel(request, request.created_at + 10.0)
        assert request.state_at(request.created_at + 11.0) is RequestState.TERMINAL

    def test_persistent_request_refulfills(self, fresh_cloud):
        """Some persistent request with an interruption re-enters pending."""
        refulfilled = False
        for _ in range(300):
            request = submit(fresh_cloud, persistent=True)
            if len(request.fulfillment_times()) > 1:
                refulfilled = True
                break
        assert refulfilled

    def test_interruptions_follow_fulfillments(self, fresh_cloud):
        for _ in range(50):
            request = submit(fresh_cloud, persistent=True)
            fulfills = request.fulfillment_times()
            for interrupt in request.interruption_times():
                assert any(f < interrupt for f in fulfills)

    def test_scores_recorded_at_submit(self, fresh_cloud):
        request = submit(fresh_cloud)
        assert request.sps_at_submit in (1, 2, 3)
        assert request.if_score_at_submit in (1.0, 1.5, 2.0, 2.5, 3.0)


class TestContinuousLatents:
    def test_continuous_sps_monotone(self):
        values = [continuous_sps(h) for h in (0.0, 0.2, THRESHOLD_2,
                                              0.425, THRESHOLD_3, 0.7, 1.0)]
        assert values == sorted(values)

    def test_continuous_sps_band_alignment(self):
        assert continuous_sps(THRESHOLD_3) == 3.0
        assert 2.0 <= continuous_sps((THRESHOLD_2 + THRESHOLD_3) / 2) < 3.0
        assert continuous_sps(0.1) < 2.0

    def test_continuous_if_monotone_decreasing_in_ratio(self):
        assert continuous_if(0.0) > continuous_if(0.1) > continuous_if(0.4)
        assert continuous_if(0.0) <= 3.35
        assert continuous_if(1.0) >= 0.5


class TestOutcomeCalibration:
    def test_high_band_always_fulfills(self):
        assert not_fulfilled_probability(THRESHOLD_3, 3.0) == 0.0
        assert not_fulfilled_probability(0.9, 1.0) == 0.0

    def test_deep_low_band_never_fulfills(self):
        assert not_fulfilled_probability(0.05, 2.0) == 1.0

    def test_high_if_raises_nf_when_scarce(self):
        low_h = 0.35
        assert not_fulfilled_probability(low_h, 3.0) >= \
            not_fulfilled_probability(low_h, 1.0)

    @given(st.floats(min_value=0.0, max_value=1.0),
           st.sampled_from([1.0, 1.5, 2.0, 2.5, 3.0]))
    @settings(max_examples=80)
    def test_nf_probability_valid(self, h, ifs):
        p = not_fulfilled_probability(h, ifs)
        assert 0.0 <= p <= 1.0

    @given(st.floats(min_value=0.0, max_value=1.0),
           st.floats(min_value=0.0, max_value=0.42))
    @settings(max_examples=80)
    def test_hazard_positive(self, h, ratio):
        assert interruption_rate_per_hour(h, ratio) > 0.0

    def test_hazard_increases_with_ratio(self):
        assert interruption_rate_per_hour(0.7, 0.35) > \
            interruption_rate_per_hour(0.7, 0.01)

    def test_weibull_scale_matches_24h_mass(self):
        rate = 0.02
        scale = weibull_scale_for_rate(rate, shape=0.5)
        p24 = 1 - math.exp(-((24 * 3600.0 / scale) ** 0.5))
        assert abs(p24 - (1 - math.exp(-rate * 24))) < 1e-9
