"""Tests for the latent spot-market model."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.cloudsim import Catalog, SpotMarket, reclaim_ratio_from_u
from repro.cloudsim.events import JUNE_2_EVENT
from repro.cloudsim.market import CATEGORY_BASE, RECLAIM_QUANTILE_KNOTS

EVENT_DAY_START = JUNE_2_EVENT.day_start
EVENT_DAY_END = JUNE_2_EVENT.day_end


class TestHeadroom:
    def test_bounded(self, cloud):
        market = cloud.market
        for day in (0, 50, 120, 180):
            t = market.epoch + day * 86400.0
            for pool in cloud.catalog.all_pools()[::500]:
                h = market.headroom(*pool, t)
                assert 0.0 <= h <= 1.0

    def test_deterministic_across_instances(self):
        catalog = Catalog(seed=0)
        a = SpotMarket(catalog, seed=0)
        b = SpotMarket(catalog, seed=0)
        t = a.epoch + 40 * 86400.0
        for pool in catalog.all_pools()[::800]:
            assert a.headroom(*pool, t) == b.headroom(*pool, t)

    def test_accelerated_scarcer_on_average(self, cloud):
        market = cloud.market
        t = market.epoch + 60 * 86400.0
        accel, general = [], []
        for itype, region, zone in cloud.catalog.all_pools()[::40]:
            h = market.headroom(itype, region, zone, t)
            category = cloud.catalog.instance_type(itype).category
            if category == "accelerated":
                accel.append(h)
            elif category == "general":
                general.append(h)
        assert np.mean(accel) < np.mean(general)

    def test_larger_sizes_scarcer(self, cloud):
        market = cloud.market
        t = market.epoch + 60 * 86400.0
        small = market.base_headroom("m5.large", "us-east-1", "us-east-1a")
        large = market.base_headroom("m5.24xlarge", "us-east-1", "us-east-1a")
        assert large < small

    def test_event_dip(self, cloud):
        """Most types lose headroom during the June-2 event window."""
        market = cloud.market
        affected = 0
        total = 0
        mid_event = market.epoch + (EVENT_DAY_START + EVENT_DAY_END) / 2 * 86400.0
        for itype, region, zone in cloud.catalog.all_pools()[::300]:
            total += 1
            depth = market._event_depth(itype, market.day_of(mid_event))
            if depth > 0:
                affected += 1
        assert affected / total > 0.6

    def test_temporal_variation_small(self, cloud):
        """Day-to-day movement stays within the designed amplitude."""
        market = cloud.market
        pool = cloud.catalog.all_pools()[10]
        values = [market.headroom(*pool, market.epoch + d * 86400.0)
                  for d in range(0, 120, 3)]
        assert max(values) - min(values) < 0.30


class TestReclaim:
    def test_pressure_in_unit_interval(self, cloud):
        market = cloud.market
        t = market.epoch + 30 * 86400.0
        for itype, region, _z in cloud.catalog.all_pools()[::400]:
            assert 0.0 <= market.reclaim_pressure(itype, region, t) <= 1.0

    def test_ratio_nonnegative_bounded(self, cloud):
        market = cloud.market
        t = market.epoch + 30 * 86400.0
        for itype, region, _z in cloud.catalog.all_pools()[::400]:
            ratio = market.interruption_ratio(itype, region, t)
            assert 0.0 <= ratio <= RECLAIM_QUANTILE_KNOTS[-1][1]

    def test_accelerated_reclaimed_harder(self, cloud):
        market = cloud.market
        t = market.epoch + 30 * 86400.0
        accel, general = [], []
        for itype, region, _z in cloud.catalog.all_pools()[::40]:
            ratio = market.interruption_ratio(itype, region, t)
            category = cloud.catalog.instance_type(itype).category
            if category == "accelerated":
                accel.append(ratio)
            elif category == "general":
                general.append(ratio)
        assert np.mean(accel) > np.mean(general)


class TestReclaimQuantileMap:
    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_monotone_and_bounded(self, u):
        ratio = reclaim_ratio_from_u(u)
        assert 0.0 <= ratio <= RECLAIM_QUANTILE_KNOTS[-1][1]

    @given(st.floats(min_value=0.0, max_value=0.99))
    @settings(max_examples=50)
    def test_monotone_nondecreasing(self, u):
        assert reclaim_ratio_from_u(u + 0.01) >= reclaim_ratio_from_u(u)

    def test_knot_values(self):
        assert reclaim_ratio_from_u(0.0) == 0.0
        assert abs(reclaim_ratio_from_u(0.3305) - 0.05) < 1e-9
        assert reclaim_ratio_from_u(1.0) == RECLAIM_QUANTILE_KNOTS[-1][1]


class TestCategoryBases:
    def test_accelerated_lowest(self):
        assert CATEGORY_BASE["accelerated"] == min(CATEGORY_BASE.values())

    def test_general_highest(self):
        assert CATEGORY_BASE["general"] == max(CATEGORY_BASE.values())
