"""Tests for the spot placement score engine."""

import pytest

from repro.cloudsim import PlacementScoreEngine, ValidationError
from repro.cloudsim.placement import (
    COMPOSITE_MAX_SCORE,
    SINGLE_TYPE_MAX_SCORE,
    THRESHOLD_2,
    THRESHOLD_3,
)


@pytest.fixture(scope="module")
def engine(cloud):
    return cloud.placement


@pytest.fixture(scope="module")
def t0(cloud):
    return cloud.clock.start + 20 * 86400.0


class TestQuantization:
    def test_thresholds(self):
        assert PlacementScoreEngine.quantize(THRESHOLD_3) == 3
        assert PlacementScoreEngine.quantize(THRESHOLD_3 - 1e-9) == 2
        assert PlacementScoreEngine.quantize(THRESHOLD_2) == 2
        assert PlacementScoreEngine.quantize(THRESHOLD_2 - 1e-9) == 1
        assert PlacementScoreEngine.quantize(-5.0) == 1
        assert PlacementScoreEngine.quantize(2.0) == 3


class TestSingleTypeScores:
    def test_zone_score_in_single_type_range(self, cloud, engine, t0):
        for pool in cloud.catalog.all_pools()[::900]:
            score = engine.zone_score(*pool, t0)
            assert 1 <= score <= SINGLE_TYPE_MAX_SCORE

    def test_region_score_at_least_best_zone(self, cloud, engine, t0):
        itype, region = "m5.large", "us-east-1"
        zones = cloud.catalog.supported_zones(itype, region)
        best = max(engine.zone_score(itype, region, z, t0) for z in zones)
        assert engine.region_score(itype, region, t0) >= best

    def test_unoffered_region_raises(self, cloud, engine, t0):
        itype = "dl1.24xlarge"
        regions = {r.code for r in cloud.catalog.regions_offering(itype)}
        missing = next(r.code for r in cloud.catalog.regions
                       if r.code not in regions)
        with pytest.raises(ValidationError):
            engine.region_score(itype, missing, t0)

    def test_capacity_lowers_score(self, cloud, engine, t0):
        for itype in ("p3.2xlarge", "d2.xlarge", "m5.large"):
            region = cloud.catalog.regions_offering(itype)[0].code
            low = engine.region_score(itype, region, t0, target_capacity=1)
            high = engine.region_score(itype, region, t0, target_capacity=50)
            assert high <= low

    def test_accelerated_capacity_sensitivity_higher(self, cloud, engine, t0):
        gpu = cloud.catalog.instance_type("p3.2xlarge")
        general = cloud.catalog.instance_type("m5.2xlarge")
        assert engine._capacity_penalty(gpu, 50) > engine._capacity_penalty(general, 50)


class TestCompositeScores:
    def test_single_type_passthrough(self, cloud, engine, t0):
        score = engine.composite_region_score(["m5.large"], "us-east-1", t0)
        assert score == engine.region_score("m5.large", "us-east-1", t0)

    def test_composite_at_least_sum_usually(self, cloud, engine, t0):
        triples = [
            ("m5.large", "c5.large", "r5.large"),
            ("t3.micro", "m5.xlarge", "c5.xlarge"),
            ("m5.large", "i3.large", "c5.2xlarge"),
        ]
        at_least = 0
        for triple in triples:
            region = "us-east-1"
            total = sum(engine.region_score(t, region, t0) for t in triple)
            composite = engine.composite_region_score(list(triple), region, t0)
            assert composite <= COMPOSITE_MAX_SCORE
            if composite >= min(total, COMPOSITE_MAX_SCORE):
                at_least += 1
        assert at_least >= 2  # the sum is (almost always) the floor

    def test_empty_query_raises(self, engine, t0):
        with pytest.raises(ValidationError):
            engine.composite_region_score([], "us-east-1", t0)


class TestScoreQuery:
    def test_result_cap(self, cloud, engine, t0):
        regions = [r.code for r in cloud.catalog.regions]
        rows = engine.score_query(["m5.large"], regions, t0,
                                  single_availability_zone=True)
        assert len(rows) <= 10

    def test_rows_sorted_by_score(self, cloud, engine, t0):
        rows = engine.score_query(["m5.large"], ["us-east-1", "eu-west-1"],
                                  t0, single_availability_zone=True)
        scores = [r.score for r in rows]
        assert scores == sorted(scores, reverse=True)

    def test_region_level_rows(self, engine, t0):
        rows = engine.score_query(["m5.large"], ["us-east-1"], t0)
        assert len(rows) == 1
        assert rows[0].availability_zone is None
        assert rows[0].location == "us-east-1"

    def test_skips_unoffered_regions(self, cloud, engine, t0):
        itype = "dl1.24xlarge"
        offered = {r.code for r in cloud.catalog.regions_offering(itype)}
        all_regions = [r.code for r in cloud.catalog.regions]
        rows = engine.score_query([itype], all_regions, t0)
        assert {r.region for r in rows} <= offered
