"""Tests for the post-2017-policy pricing engine."""

import pytest

from repro.cloudsim.pricing import BASE_DISCOUNT_MIN, DISCOUNT_JITTER, HEADROOM_COUPLING


@pytest.fixture(scope="module")
def t0(cloud):
    return cloud.clock.start + 15 * 86400.0


class TestSpotPrice:
    def test_below_on_demand(self, cloud, t0):
        for name in ("m5.large", "p3.2xlarge", "t3.micro", "i3.large"):
            itype = cloud.catalog.instance_type(name)
            region = cloud.catalog.regions_offering(name)[0].code
            spot = cloud.pricing.spot_price(itype, region, t0)
            assert 0 < spot < itype.on_demand_price

    def test_minimum_discount(self, cloud, t0):
        itype = cloud.catalog.instance_type("m5.large")
        spot = cloud.pricing.spot_price(itype, "us-east-1", t0)
        max_price = itype.on_demand_price * (
            1 - BASE_DISCOUNT_MIN + DISCOUNT_JITTER + HEADROOM_COUPLING)
        assert spot <= max_price + 1e-9

    def test_piecewise_constant(self, cloud, t0):
        """The price holds between change points (post-2017 smoothness)."""
        price_a = cloud.pricing.spot_price("m5.large", "us-east-1", t0)
        price_b = cloud.pricing.spot_price("m5.large", "us-east-1", t0 + 60.0)
        assert price_a == price_b

    def test_deterministic(self, cloud, t0):
        region = cloud.catalog.regions_offering("c5.xlarge")[0].code
        a = cloud.pricing.spot_price("c5.xlarge", region, t0)
        b = cloud.pricing.spot_price("c5.xlarge", region, t0)
        assert a == b

    def test_zone_specific(self, cloud, t0):
        zones = cloud.catalog.supported_zones("m5.large", "us-east-1")
        prices = {cloud.pricing.spot_price("m5.large", "us-east-1", t0, z)
                  for z in zones}
        assert len(prices) >= 1  # zones may differ; all valid

    def test_savings_fraction(self, cloud, t0):
        savings = cloud.pricing.savings_fraction("m5.large", "us-east-1", t0)
        assert 0.0 < savings < 1.0


class TestPriceHistory:
    def test_history_sorted_and_bounded(self, cloud, t0):
        history = cloud.pricing.price_history("m5.large", "us-east-1",
                                              t0, t0 + 30 * 86400.0)
        times = [p.timestamp for p in history]
        assert times == sorted(times)
        assert times[0] >= cloud.clock.start
        assert all(t0 <= t <= t0 + 30 * 86400.0 or i == 0
                   for i, t in enumerate(times))

    def test_history_includes_price_in_force(self, cloud, t0):
        """The first row reflects the price already in force at start."""
        history = cloud.pricing.price_history("m5.large", "us-east-1",
                                              t0, t0 + 86400.0)
        assert history  # never empty: the in-force price is included
        current = cloud.pricing.spot_price("m5.large", "us-east-1", t0)
        assert history[0].price == current

    def test_changes_occur_over_a_month(self, cloud, t0):
        history = cloud.pricing.price_history("m5.large", "us-east-1",
                                              t0, t0 + 30 * 86400.0)
        assert len(history) >= 2  # ~every 3 days in expectation

    def test_inverted_range_raises(self, cloud, t0):
        with pytest.raises(ValueError):
            cloud.pricing.price_history("m5.large", "us-east-1", t0, t0 - 1)

    def test_history_consistent_with_point_lookup(self, cloud, t0):
        history = cloud.pricing.price_history("m5.large", "us-east-1",
                                              t0, t0 + 20 * 86400.0)
        for point in history[1:3]:
            looked_up = cloud.pricing.spot_price(
                "m5.large", "us-east-1", point.timestamp + 1.0,
                point.availability_zone)
            assert looked_up == point.price
