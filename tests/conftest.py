"""Shared test fixtures: a session-scoped simulated cloud and small
catalogs/services so individual tests stay fast."""

from __future__ import annotations

import pytest

from repro import ServiceConfig, SimulatedCloud, SpotLakeService
from repro.cloudsim import Catalog, InstanceFamily, Region

#: Small but category-complete set of instance types for service tests.
SMALL_TYPES = [
    "m5.large", "t3.micro", "c5.xlarge", "r5.2xlarge",
    "p3.2xlarge", "g4dn.xlarge", "inf1.xlarge",
    "i3.large", "d3.xlarge",
]


@pytest.fixture(scope="session")
def cloud() -> SimulatedCloud:
    """One full-catalog simulated cloud shared across read-only tests."""
    return SimulatedCloud(seed=0)


@pytest.fixture()
def fresh_cloud() -> SimulatedCloud:
    """A private cloud for tests that advance the clock or mutate state."""
    return SimulatedCloud(seed=0)


@pytest.fixture()
def small_service() -> SpotLakeService:
    """A SpotLake service restricted to a handful of instance types."""
    return SpotLakeService(ServiceConfig(seed=0, instance_types=SMALL_TYPES))


@pytest.fixture(scope="session")
def tiny_catalog() -> Catalog:
    """A two-family, two-region catalog for exhaustive assertions."""
    families = [
        InstanceFamily("m9", "M", "general", ("large", "xlarge")),
        InstanceFamily("p9", "P", "accelerated", ("2xlarge",), "gpu", 3.0),
    ]
    regions = [Region("rg-one-1", "rg", 3), Region("rg-two-1", "rg", 2)]
    return Catalog(seed=1, families=families, regions=regions)


@pytest.fixture()
def conc_sanitizer():
    """Run the test body under the runtime concurrency sanitizer.

    Teardown asserts the sanitizer observed no lock-order cycles and no
    unguarded off-owner shared writes, so a test using this fixture is
    itself the concurrency contract.
    """
    from repro.core.plan_cache import PlanCache
    from repro.devtools.reporters import render_text
    from repro.devtools.sanitizer import ConcurrencySanitizer

    PlanCache.reset_shared()
    sanitizer = ConcurrencySanitizer()
    sanitizer.install()
    try:
        yield sanitizer
    finally:
        sanitizer.uninstall()
        PlanCache.reset_shared()
    result = sanitizer.result()
    assert result.clean, "\n" + render_text(result)


@pytest.fixture(autouse=True)
def _spotconc_autosanitize():
    """Whole-suite sanitizer sweep, gated on SPOTCONC_SANITIZE=1.

    The CI ``conc`` job runs the parallel and chaos suites with the
    sanitizer wrapped around every test; local runs pay nothing.
    """
    import os

    if os.environ.get("SPOTCONC_SANITIZE") != "1":
        yield
        return
    from repro.core.plan_cache import PlanCache
    from repro.devtools.reporters import render_text
    from repro.devtools.sanitizer import ConcurrencySanitizer

    PlanCache.reset_shared()
    sanitizer = ConcurrencySanitizer()
    sanitizer.install()
    try:
        yield
    finally:
        sanitizer.uninstall()
        PlanCache.reset_shared()
    result = sanitizer.result()
    assert result.clean, "\n" + render_text(result)
