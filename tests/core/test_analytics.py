"""Generation-stamped rollup cache and result memo of the analytics runtime.

The invalidation contract under test (DESIGN.md "Vectorized analytics &
rollups"): a cached per-day partial is served only while the series
generation proves it current; an append drops only days at or past the
stale frontier (appends are monotone in time); an eviction bumps
``Table.eviction_generation`` and invalidates a series' rollups
wholesale.  Staleness is never acceptable -- every reuse scenario is
cross-checked against the row-at-a-time reference oracle.
"""

import pytest

from repro.core.archive import DIM_TYPE, SpotLakeArchive
from repro.devtools.analysisbench import compare_aggregates, reference_aggregate
from repro.lake import SPS_MEASURE
from repro.timeseries import RetentionPolicy
from repro.timeseries.vector import AggSpec

DAY = 86400.0
EPOCH = 1640995200.0  # 2022-01-01 UTC, day-aligned
DAYS = 5
PER_DAY = 4
TYPES = 3


def _fill(archive: SpotLakeArchive, days: int = DAYS) -> float:
    last = EPOCH
    for d in range(days):
        for s in range(PER_DAY):
            t = EPOCH + d * DAY + s * (DAY / PER_DAY)
            for p in range(TYPES):
                archive.put_sps(f"pool{p}.large", "r1", "r1a",
                                (d + s + p) % 3 + 1, t)
            last = t
    return last


def _day_spec(days: int = DAYS) -> AggSpec:
    return AggSpec.make("sps", SPS_MEASURE, EPOCH, EPOCH + days * DAY,
                        bucket_seconds=DAY, group_by=(DIM_TYPE,),
                        aggregates=("count", "mean", "std", "last",
                                    "change_count"))


def _assert_oracle(archive: SpotLakeArchive, spec: AggSpec) -> None:
    verdict = compare_aggregates(archive.analytics.run(spec),
                                 reference_aggregate(archive, spec))
    assert verdict["identical"], verdict["mismatch"]


class TestResultMemo:
    def test_repeat_query_hits_the_result_cache(self):
        archive = SpotLakeArchive()
        try:
            _fill(archive)
            spec = _day_spec()
            first = archive.analytics.run(spec)
            again = archive.analytics.run(spec)
            stats = archive.analytics.stats()
            assert stats["queries"] == 2
            assert stats["result_hits"] == 1
            assert stats["result_misses"] == 1
            assert again is first  # the memo shares the object
        finally:
            archive.close()

    def test_cacheless_archive_recomputes(self):
        archive = SpotLakeArchive(cache=False)
        try:
            _fill(archive)
            spec = _day_spec()
            archive.analytics.run(spec)
            archive.analytics.run(spec)
            stats = archive.analytics.stats()
            assert stats["result_hits"] == 0
            assert stats["queries"] == 2
        finally:
            archive.close()


class TestRollupGenerationStamps:
    def test_first_run_computes_every_day_partial(self):
        archive = SpotLakeArchive()
        try:
            _fill(archive)
            archive.analytics.run(_day_spec())
            stats = archive.analytics.stats()
            assert stats["rollup_day_recomputes"] == DAYS * TYPES
            assert stats["rollup_day_hits"] == 0
            assert stats["rollup_invalidations"] == 0
        finally:
            archive.close()

    def test_append_reuses_pre_frontier_days(self):
        """An append invalidates only days >= the stale frontier."""
        archive = SpotLakeArchive()
        try:
            last = _fill(archive)
            spec = _day_spec()
            archive.analytics.run(spec)
            baseline = archive.analytics.stats()
            # one new observation on the last day bumps every touched
            # series' generation, so the result memo must NOT serve the
            # stale result -- but day partials before the frontier stay
            archive.put_sps("pool0.large", "r1", "r1a", 9, last + 1.0)
            result = archive.analytics.run(spec)
            stats = archive.analytics.stats()
            assert stats["result_hits"] == baseline["result_hits"]
            assert stats["rollup_day_hits"] > 0
            recomputed = stats["rollup_day_recomputes"] \
                - baseline["rollup_day_recomputes"]
            # strictly fewer than a full rebuild of the appended series
            assert 0 < recomputed < DAYS * TYPES
            # and the served numbers reflect the append (no staleness)
            verdict = compare_aggregates(result,
                                         reference_aggregate(archive, spec))
            assert verdict["identical"], verdict["mismatch"]
        finally:
            archive.close()

    def test_warm_repeat_after_memo_bust_hits_every_day(self):
        """Day partials outlive the result memo (cacheless archive)."""
        archive = SpotLakeArchive(cache=False)
        try:
            _fill(archive)
            spec = _day_spec()
            archive.analytics.run(spec)
            archive.analytics.run(spec)
            stats = archive.analytics.stats()
            assert stats["rollup_day_recomputes"] == DAYS * TYPES
            assert stats["rollup_day_hits"] == DAYS * TYPES
        finally:
            archive.close()

    def test_non_day_aligned_specs_bypass_the_rollup_cache(self):
        archive = SpotLakeArchive()
        try:
            _fill(archive)
            for spec in (
                AggSpec.make("sps", SPS_MEASURE, EPOCH + 1.0,
                             EPOCH + DAYS * DAY, bucket_seconds=DAY),
                AggSpec.make("sps", SPS_MEASURE, EPOCH, EPOCH + DAYS * DAY,
                             bucket_seconds=DAY / 2),
                AggSpec.make("sps", SPS_MEASURE, EPOCH, EPOCH + DAYS * DAY),
            ):
                _assert_oracle(archive, spec)
            stats = archive.analytics.stats()
            assert stats["rollup_day_recomputes"] == 0
            assert stats["rollup_day_hits"] == 0
        finally:
            archive.close()


class TestEvictionInvalidation:
    def test_eviction_drops_rollups_wholesale(self):
        archive = SpotLakeArchive(
            retention=RetentionPolicy(max_age_seconds=2 * DAY))
        try:
            last = _fill(archive)
            archive.commit_round(last)
            spec = AggSpec.make(
                "sps", SPS_MEASURE, EPOCH + (DAYS - 2) * DAY,
                EPOCH + DAYS * DAY, bucket_seconds=DAY,
                group_by=(DIM_TYPE,), aggregates=("count", "mean"))
            _assert_oracle(archive, spec)
            assert archive.analytics.stats()["rollup_day_recomputes"] > 0

            # another write plus a retention sweep advances the cutoff,
            # evicting rows and bumping the eviction generation
            t2 = last + 2 * DAY
            archive.put_sps("pool0.large", "r1", "r1a", 2, t2)
            archive.commit_round(t2)
            assert archive.store.table("sps").eviction_generation > 0

            late = AggSpec.make(
                "sps", SPS_MEASURE, EPOCH + DAYS * DAY,
                EPOCH + (DAYS + 2) * DAY, bucket_seconds=DAY,
                group_by=(DIM_TYPE,), aggregates=("count", "mean"))
            _assert_oracle(archive, late)
            assert archive.analytics.stats()["rollup_invalidations"] > 0
        finally:
            archive.close()
