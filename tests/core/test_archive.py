"""Tests for the SpotLake archive facade."""

import numpy as np
import pytest

from repro.core import SpotLakeArchive


@pytest.fixture()
def archive():
    a = SpotLakeArchive()
    a.put_sps("m5.large", "us-east-1", "us-east-1a", 3, 0)
    a.put_sps("m5.large", "us-east-1", "us-east-1a", 2, 100)
    a.put_advisor("m5.large", "us-east-1", 0.03, 3.0, 70, 0)
    a.put_advisor("m5.large", "us-east-1", 0.12, 2.0, 72, 100)
    a.put_price("m5.large", "us-east-1", "us-east-1a", 0.035, 0)
    return a


class TestPointReads:
    def test_sps_at(self, archive):
        assert archive.sps_at("m5.large", "us-east-1", "us-east-1a", 50) == 3
        assert archive.sps_at("m5.large", "us-east-1", "us-east-1a", 150) == 2
        assert archive.sps_at("m5.large", "us-east-1", "us-east-1a", -1) is None
        assert archive.sps_at("nope", "us-east-1", "us-east-1a", 50) is None

    def test_if_score_at(self, archive):
        assert archive.if_score_at("m5.large", "us-east-1", 50) == 3.0
        assert archive.if_score_at("m5.large", "us-east-1", 150) == 2.0

    def test_savings_at(self, archive):
        assert archive.savings_at("m5.large", "us-east-1", 150) == 72

    def test_price_at(self, archive):
        assert archive.price_at("m5.large", "us-east-1", "us-east-1a", 1) == 0.035


class TestBulkReads:
    def test_sps_matrix(self, archive):
        keys, matrix = archive.sps_matrix([0, 50, 150])
        assert matrix.shape == (1, 3)
        assert list(matrix[0]) == [3, 3, 2]

    def test_if_matrix(self, archive):
        _, matrix = archive.if_score_matrix([50, 150])
        assert list(matrix[0]) == [3.0, 2.0]

    def test_history(self, archive):
        rows = archive.history("sps", "sps",
                               {"InstanceType": "m5.large"}, 0, 1e9)
        assert [r.value for r in rows] == [3, 2]

    def test_update_intervals(self, archive):
        assert archive.update_interval_samples("sps") == [100.0]
        assert archive.update_interval_samples("if_score") == [100.0]
        assert archive.update_interval_samples("price") == []

    def test_unknown_dataset_rejected(self, archive):
        with pytest.raises(ValueError):
            archive.update_interval_samples("weather")

    def test_stats_tables(self, archive):
        stats = archive.stats()
        assert set(stats) == {"sps", "advisor", "price"}
