"""Tests for the SpotLake archive facade."""

import numpy as np
import pytest

from repro.core import SpotLakeArchive


@pytest.fixture()
def archive():
    a = SpotLakeArchive()
    a.put_sps("m5.large", "us-east-1", "us-east-1a", 3, 0)
    a.put_sps("m5.large", "us-east-1", "us-east-1a", 2, 100)
    a.put_advisor("m5.large", "us-east-1", 0.03, 3.0, 70, 0)
    a.put_advisor("m5.large", "us-east-1", 0.12, 2.0, 72, 100)
    a.put_price("m5.large", "us-east-1", "us-east-1a", 0.035, 0)
    return a


class TestPointReads:
    def test_sps_at(self, archive):
        assert archive.sps_at("m5.large", "us-east-1", "us-east-1a", 50) == 3
        assert archive.sps_at("m5.large", "us-east-1", "us-east-1a", 150) == 2
        assert archive.sps_at("m5.large", "us-east-1", "us-east-1a", -1) is None
        assert archive.sps_at("nope", "us-east-1", "us-east-1a", 50) is None

    def test_if_score_at(self, archive):
        assert archive.if_score_at("m5.large", "us-east-1", 50) == 3.0
        assert archive.if_score_at("m5.large", "us-east-1", 150) == 2.0

    def test_savings_at(self, archive):
        assert archive.savings_at("m5.large", "us-east-1", 150) == 72

    def test_price_at(self, archive):
        assert archive.price_at("m5.large", "us-east-1", "us-east-1a", 1) == 0.035


class TestBulkReads:
    def test_sps_matrix(self, archive):
        keys, matrix = archive.sps_matrix([0, 50, 150])
        assert matrix.shape == (1, 3)
        assert list(matrix[0]) == [3, 3, 2]

    def test_if_matrix(self, archive):
        _, matrix = archive.if_score_matrix([50, 150])
        assert list(matrix[0]) == [3.0, 2.0]

    def test_history(self, archive):
        rows = archive.history("sps", "sps",
                               {"InstanceType": "m5.large"}, 0, 1e9)
        assert [r.value for r in rows] == [3, 2]

    def test_update_intervals(self, archive):
        assert archive.update_interval_samples("sps") == [100.0]
        assert archive.update_interval_samples("if_score") == [100.0]
        assert archive.update_interval_samples("price") == []

    def test_unknown_dataset_rejected(self, archive):
        with pytest.raises(ValueError):
            archive.update_interval_samples("weather")

    def test_stats_tables(self, archive):
        stats = archive.stats()
        assert set(stats) == {"sps", "advisor", "price", "analytics"}


class TestBatchedWrites:
    """The bulk writers must be byte-equivalent to their pointwise twins."""

    SPS_ROWS = [("m5.large", "r1", "r1a", 3, 10.0),
                ("m5.large", "r1", "r1b", 2, 10.0),
                ("c5.xlarge", "r2", "r2a", 1, 10.0)]
    PRICE_ROWS = [("m5.large", "r1", "r1a", 0.12, 10.0),
                  ("c5.xlarge", "r2", "r2a", 0.31, 10.0)]
    ADVISOR_ROWS = [("m5.large", "r1", 0.04, 3.0, 60, 10.0),
                    ("c5.xlarge", "r2", 0.17, 2.0, 55, 10.0)]

    def _pointwise(self):
        archive = SpotLakeArchive()
        for row in self.SPS_ROWS:
            archive.put_sps(*row)
        for row in self.ADVISOR_ROWS:
            archive.put_advisor(*row)
        for row in self.PRICE_ROWS:
            archive.put_price(*row)
        return archive

    def _dump(self, archive):
        import hashlib
        import tempfile
        from pathlib import Path
        from repro.timeseries import dump_store
        with tempfile.TemporaryDirectory() as tmp:
            dump_store(archive.store, Path(tmp))
            return {p.name: hashlib.sha256(p.read_bytes()).hexdigest()
                    for p in sorted(Path(tmp).glob("*.jsonl"))}

    def test_batch_apis_match_pointwise_writes(self):
        batched = SpotLakeArchive()
        assert batched.put_sps_batch(self.SPS_ROWS) == len(self.SPS_ROWS)
        assert batched.put_advisor_batch(self.ADVISOR_ROWS) == \
            3 * len(self.ADVISOR_ROWS)
        assert batched.put_price_batch(self.PRICE_ROWS) == \
            len(self.PRICE_ROWS)
        assert self._dump(batched) == self._dump(self._pointwise())

    def test_record_batch_buffers_then_flushes_once(self):
        archive = SpotLakeArchive()
        batch = archive.record_batch()
        batch.add_sps_rows(self.SPS_ROWS)
        for row in self.ADVISOR_ROWS:
            batch.add_advisor(*row)
        batch.add_price_rows(self.PRICE_ROWS)
        expected = len(self.SPS_ROWS) + 3 * len(self.ADVISOR_ROWS) \
            + len(self.PRICE_ROWS)
        assert len(batch) == expected
        # nothing lands until flush
        assert archive.stats()["sps"]["records_written"] == 0
        assert batch.flush() == expected
        assert len(batch) == 0
        assert self._dump(archive) == self._dump(self._pointwise())
        # a flushed batch is reusable and an empty flush is a no-op
        assert batch.flush() == 0

    def test_batches_are_durably_logged(self, tmp_path):
        durable = SpotLakeArchive(data_dir=tmp_path / "d", checkpoint_every=0)
        batch = durable.record_batch()
        batch.add_sps_rows(self.SPS_ROWS)
        batch.flush()
        durable.commit_round(10.0)
        durable.close()
        reopened = SpotLakeArchive(data_dir=tmp_path / "d")
        assert reopened.sps_at("m5.large", "r1", "r1a", 10.0) == 3
        reopened.close()
