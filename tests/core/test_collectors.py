"""Tests for the three dataset collectors."""

import pytest

from repro import AccountPool, SimulatedCloud
from repro.core import (
    AdvisorCollector,
    PriceCollector,
    SpotLakeArchive,
    SpotInfoScraper,
    SpsCollector,
    plan_for_offering_map,
)


@pytest.fixture()
def setup(fresh_cloud):
    offering = {t: rz for t, rz in fresh_cloud.catalog.offering_map().items()
                if t in ("m5.large", "p3.2xlarge", "c5.xlarge")}
    plan = plan_for_offering_map(offering)
    archive = SpotLakeArchive()
    return fresh_cloud, plan, archive


class TestSpsCollector:
    def test_collect_round(self, setup):
        cloud, plan, archive = setup
        collector = SpsCollector(cloud, archive, AccountPool(2), plan)
        report = collector.collect()
        assert report.queries_issued == plan.optimized_query_count
        assert report.queries_failed == 0
        assert report.records_written > 0
        assert archive.stats()["sps"]["series"] == report.records_written

    def test_records_match_engine(self, setup):
        cloud, plan, archive = setup
        SpsCollector(cloud, archive, AccountPool(2), plan).collect()
        now = cloud.clock.now()
        zone = cloud.catalog.supported_zones("m5.large", "us-east-1")[0]
        archived = archive.sps_at("m5.large", "us-east-1", zone, now)
        direct = cloud.placement.zone_score("m5.large", "us-east-1", zone, now)
        assert archived == direct

    def test_quota_starvation_reported(self, setup):
        cloud, plan, archive = setup
        starved = AccountPool(1, quota=3)
        report = SpsCollector(cloud, archive, starved, plan).collect()
        assert report.queries_failed == plan.optimized_query_count - 3

    def test_repeat_round_is_free(self, setup):
        """A second identical round re-issues the same unique queries and
        costs no additional quota."""
        cloud, plan, archive = setup
        pool = AccountPool(AccountPool.size_for(plan.optimized_query_count))
        collector = SpsCollector(cloud, archive, pool, plan)
        collector.collect()
        used_before = pool.total_remaining(cloud.clock.now())
        cloud.clock.advance_minutes(10)
        report = collector.collect()
        assert report.queries_failed == 0
        assert pool.total_remaining(cloud.clock.now()) == used_before


class TestAdvisorCollector:
    def test_single_fetch_covers_catalog(self, fresh_cloud):
        archive = SpotLakeArchive()
        report = AdvisorCollector(fresh_cloud, archive).collect()
        assert report.queries_issued == 1
        offering = fresh_cloud.catalog.offering_map()
        pairs = sum(len(r) for r in offering.values())
        assert report.records_written == 3 * pairs

    def test_scraper_is_programmatic_wrapper(self, fresh_cloud):
        scraper = SpotInfoScraper(fresh_cloud)
        snapshot = scraper.fetch()
        assert snapshot
        assert snapshot[0].interruption_label in (
            "<5%", "5-10%", "10-15%", "15-20%", ">20%")

    def test_if_score_stored(self, fresh_cloud):
        archive = SpotLakeArchive()
        AdvisorCollector(fresh_cloud, archive).collect()
        now = fresh_cloud.clock.now()
        score = archive.if_score_at("m5.large", "us-east-1", now)
        assert score in (1.0, 1.5, 2.0, 2.5, 3.0)


class TestPriceCollector:
    def test_restricted_pools(self, fresh_cloud):
        pools = [p for p in fresh_cloud.catalog.all_pools()
                 if p[0] == "m5.large"][:5]
        archive = SpotLakeArchive()
        report = PriceCollector(fresh_cloud, archive, pools).collect()
        assert report.records_written == len(pools)
        now = fresh_cloud.clock.now()
        itype, region, zone = pools[0]
        assert archive.price_at(itype, region, zone, now) == \
            fresh_cloud.pricing.spot_price(itype, region, now, zone)
