"""Tests for the serving observability layer (core/metrics.py)."""

import json
import threading

from repro.core import MetricsRegistry, RouteMetrics, TenantMetrics, percentile
from repro.core.metrics import MAX_SAMPLES


class FakeTimer:
    """Deterministic timer: each call advances by the scripted step."""

    def __init__(self, step=0.010):
        self.now = 0.0
        self.step = step

    def __call__(self):
        self.now += self.step
        return self.now


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 50) == 0.0

    def test_nearest_rank(self):
        samples = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]
        assert percentile(samples, 50) == 5.0
        assert percentile(samples, 95) == 10.0
        assert percentile(samples, 99) == 10.0
        assert percentile(samples, 100) == 10.0

    def test_single_sample(self):
        assert percentile([7.5], 50) == 7.5
        assert percentile([7.5], 99) == 7.5


class TestRouteMetrics:
    def test_observe_accumulates(self):
        m = RouteMetrics()
        m.observe(200, 10, 1.5)
        m.observe(200, 5, 2.5)
        m.observe(400, 0, 0.5)
        m.observe(500, 0, 9.0)
        snap = m.snapshot()
        assert snap["requests"] == 4
        assert snap["by_status"] == {"200": 2, "400": 1, "500": 1}
        assert snap["server_errors"] == 1
        assert snap["rows_served"] == 15
        assert snap["latency"]["max_ms"] == 9.0
        assert snap["latency"]["mean_ms"] == (1.5 + 2.5 + 0.5 + 9.0) / 4

    def test_percentiles_over_known_distribution(self):
        m = RouteMetrics()
        for latency in range(1, 101):  # 1..100 ms
            m.observe(200, 0, float(latency))
        snap = m.snapshot()["latency"]
        assert snap["p50_ms"] == 50.0
        assert snap["p95_ms"] == 95.0
        assert snap["p99_ms"] == 99.0

    def test_reservoir_stays_bounded(self):
        m = RouteMetrics()
        for i in range(3 * MAX_SAMPLES):
            m.observe(200, 0, float(i % 97))
        assert len(m.samples_ms) < MAX_SAMPLES
        assert m.requests == 3 * MAX_SAMPLES
        # percentiles still sane after decimation
        snap = m.snapshot()["latency"]
        assert 0.0 <= snap["p50_ms"] <= snap["p99_ms"] <= 96.0


class TestMetricsRegistry:
    def test_injected_timer_is_used(self):
        timer = FakeTimer(step=0.010)
        registry = MetricsRegistry(timer=timer)
        started = registry.clock()
        elapsed = registry.clock() - started
        registry.observe("/x", 200, 3, elapsed)
        snap = registry.snapshot()
        assert snap["routes"]["/x"]["latency"]["p50_ms"] == 10.0

    def test_totals_aggregate_routes(self):
        registry = MetricsRegistry(timer=FakeTimer())
        registry.observe("/a", 200, 2, 0.001)
        registry.observe("/b", 500, 0, 0.002)
        totals = registry.snapshot()["totals"]
        assert totals == {"requests": 2, "server_errors": 1,
                          "rows_served": 2, "rate_limited": 0, "shed": 0}

    def test_reset(self):
        registry = MetricsRegistry(timer=FakeTimer())
        registry.observe("/a", 200, 1, 0.001)
        registry.reset()
        assert registry.snapshot()["totals"]["requests"] == 0

    def test_snapshot_is_json_able(self):
        registry = MetricsRegistry(timer=FakeTimer())
        registry.observe("/a", 200, 1, 0.001)
        json.dumps(registry.snapshot())


class TestTenantMetrics:
    def test_observe_classifies_statuses(self):
        m = TenantMetrics()
        m.observe(200, 5)
        m.observe(200, 3)
        m.observe(429, 0)
        m.observe(503, 0)
        m.observe(400, 0)
        snap = m.snapshot()
        assert snap["requests"] == 5
        assert snap["succeeded"] == 2
        assert snap["rate_limited"] == 1
        assert snap["shed"] == 1
        assert snap["rows_served"] == 8
        assert snap["by_status"] == {"200": 2, "400": 1, "429": 1, "503": 1}

    def test_rejections_roll_up_into_totals(self):
        registry = MetricsRegistry(timer=FakeTimer())
        registry.observe("/a", 200, 1, 0.001, tenant="t1")
        registry.observe_rejection("/a", 429, tenant="t1")
        registry.observe_rejection("/b", 503, tenant="t2")
        snap = registry.snapshot()
        assert snap["totals"]["rate_limited"] == 1
        assert snap["totals"]["shed"] == 1
        assert snap["tenants"]["t1"]["rate_limited"] == 1
        assert snap["tenants"]["t2"]["shed"] == 1

    def test_rejections_contribute_no_latency_samples(self):
        registry = MetricsRegistry(timer=FakeTimer())
        registry.observe("/a", 200, 0, 0.050)
        for _ in range(9):
            registry.observe_rejection("/a", 429)
        route = registry.route("/a")
        assert route.requests == 10
        assert route.samples_ms == [50.0]
        # the p50 describes the served request, not a pile of 0ms 429s
        assert registry.snapshot()["routes"]["/a"]["latency"]["p50_ms"] == 50.0


class TestConcurrentObserve:
    """The registry is shared by every serving worker; counters and the
    latency reservoir must stay exact and ordered under races."""

    THREADS = 8
    PER_THREAD = 2000

    def test_counters_and_reservoir_exact_under_race(self):
        registry = MetricsRegistry(timer=FakeTimer())
        barrier = threading.Barrier(self.THREADS)

        def worker():
            barrier.wait()
            for i in range(self.PER_THREAD):
                registry.observe("/hot", 200, 1, (i % 50) / 1000.0)

        threads = [threading.Thread(target=worker)
                   for _ in range(self.THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        total = self.THREADS * self.PER_THREAD
        snap = registry.snapshot()["routes"]["/hot"]
        assert snap["requests"] == total  # no lost increments
        assert snap["rows_served"] == total
        assert snap["by_status"] == {"200": total}
        route = registry.route("/hot")
        # the decimating reservoir stayed bounded and sorted (insort
        # into an unsorted list would silently corrupt percentiles)
        assert len(route.samples_ms) < MAX_SAMPLES
        assert route.samples_ms == sorted(route.samples_ms)
        assert 0.0 <= snap["latency"]["p50_ms"] <= 49.0
        assert snap["latency"]["max_ms"] == 49.0

    def test_tenant_counters_isolated_under_race(self):
        registry = MetricsRegistry(timer=FakeTimer())
        names = [f"tenant-{i}" for i in range(6)]
        barrier = threading.Barrier(len(names))

        def worker(name, index):
            barrier.wait()
            for i in range(500):
                registry.observe("/shared", 200, 1, 0.001, tenant=name)
                if i % (index + 2) == 0:
                    registry.observe_rejection("/shared", 429, tenant=name)

        threads = [threading.Thread(target=worker, args=(name, index))
                   for index, name in enumerate(names)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        snap = registry.snapshot()
        for index, name in enumerate(names):
            expected_429 = len(range(0, 500, index + 2))
            tenant = snap["tenants"][name]
            assert tenant["succeeded"] == 500
            assert tenant["rate_limited"] == expected_429
            assert tenant["requests"] == 500 + expected_429
        assert snap["routes"]["/shared"]["requests"] == sum(
            snap["tenants"][name]["requests"] for name in names)

    def test_concurrent_registration_yields_one_route_object(self):
        registry = MetricsRegistry(timer=FakeTimer())
        seen = []
        lock = threading.Lock()
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()
            route = registry.route("/race")
            with lock:
                seen.append(id(route))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(set(seen)) == 1
