"""Tests for the serving observability layer (core/metrics.py)."""

import json

from repro.core import MetricsRegistry, RouteMetrics, percentile
from repro.core.metrics import MAX_SAMPLES


class FakeTimer:
    """Deterministic timer: each call advances by the scripted step."""

    def __init__(self, step=0.010):
        self.now = 0.0
        self.step = step

    def __call__(self):
        self.now += self.step
        return self.now


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 50) == 0.0

    def test_nearest_rank(self):
        samples = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]
        assert percentile(samples, 50) == 5.0
        assert percentile(samples, 95) == 10.0
        assert percentile(samples, 99) == 10.0
        assert percentile(samples, 100) == 10.0

    def test_single_sample(self):
        assert percentile([7.5], 50) == 7.5
        assert percentile([7.5], 99) == 7.5


class TestRouteMetrics:
    def test_observe_accumulates(self):
        m = RouteMetrics()
        m.observe(200, 10, 1.5)
        m.observe(200, 5, 2.5)
        m.observe(400, 0, 0.5)
        m.observe(500, 0, 9.0)
        snap = m.snapshot()
        assert snap["requests"] == 4
        assert snap["by_status"] == {"200": 2, "400": 1, "500": 1}
        assert snap["server_errors"] == 1
        assert snap["rows_served"] == 15
        assert snap["latency"]["max_ms"] == 9.0
        assert snap["latency"]["mean_ms"] == (1.5 + 2.5 + 0.5 + 9.0) / 4

    def test_percentiles_over_known_distribution(self):
        m = RouteMetrics()
        for latency in range(1, 101):  # 1..100 ms
            m.observe(200, 0, float(latency))
        snap = m.snapshot()["latency"]
        assert snap["p50_ms"] == 50.0
        assert snap["p95_ms"] == 95.0
        assert snap["p99_ms"] == 99.0

    def test_reservoir_stays_bounded(self):
        m = RouteMetrics()
        for i in range(3 * MAX_SAMPLES):
            m.observe(200, 0, float(i % 97))
        assert len(m.samples_ms) < MAX_SAMPLES
        assert m.requests == 3 * MAX_SAMPLES
        # percentiles still sane after decimation
        snap = m.snapshot()["latency"]
        assert 0.0 <= snap["p50_ms"] <= snap["p99_ms"] <= 96.0


class TestMetricsRegistry:
    def test_injected_timer_is_used(self):
        timer = FakeTimer(step=0.010)
        registry = MetricsRegistry(timer=timer)
        started = registry.clock()
        elapsed = registry.clock() - started
        registry.observe("/x", 200, 3, elapsed)
        snap = registry.snapshot()
        assert snap["routes"]["/x"]["latency"]["p50_ms"] == 10.0

    def test_totals_aggregate_routes(self):
        registry = MetricsRegistry(timer=FakeTimer())
        registry.observe("/a", 200, 2, 0.001)
        registry.observe("/b", 500, 0, 0.002)
        totals = registry.snapshot()["totals"]
        assert totals == {"requests": 2, "server_errors": 1,
                          "rows_served": 2}

    def test_reset(self):
        registry = MetricsRegistry(timer=FakeTimer())
        registry.observe("/a", 200, 1, 0.001)
        registry.reset()
        assert registry.snapshot()["totals"]["requests"] == 0

    def test_snapshot_is_json_able(self):
        registry = MetricsRegistry(timer=FakeTimer())
        registry.observe("/a", 200, 1, 0.001)
        json.dumps(registry.snapshot())
