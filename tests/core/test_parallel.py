"""Parallel collection engine: determinism, quota parity, shard algebra.

The engine's whole value proposition is "faster, but indistinguishable":
for every worker count the archive bytes, collection reports and
per-account quota charges must match the legacy serial collector
exactly, with and without fault injection.  These tests pin that down on
a small catalog (the full-catalog version runs in
``doublerun --workers-sweep`` and the collection bench).
"""

import dataclasses
import hashlib
import shutil
import tempfile
from pathlib import Path

import pytest

from repro import ServiceConfig, SpotLakeService
from repro.core.collectors import CollectionReport
from repro.core.parallel import ParallelCollectionEngine, shard_ranges
from repro.core.plan_cache import PlanCache
from repro.timeseries import dump_store

TYPES = ["m5.large", "c5.xlarge", "p3.2xlarge", "i3.large", "t3.micro"]


def _run_service(workers, chaos="none", rounds=3, seed=11):
    """Collect ``rounds`` rounds; returns (digest, reports, quota map)."""
    PlanCache.reset_shared()
    service = SpotLakeService(ServiceConfig(
        seed=seed, instance_types=TYPES, workers=workers,
        chaos_profile=chaos))
    reports = []
    try:
        for _ in range(rounds):
            reports.append(service.sps_collector.collect())
            service.cloud.clock.advance(600.0)
        now = service.cloud.clock.now()
        quotas = {account.name: account.unique_queries_used(now)
                  for account in service.accounts.accounts}
        directory = Path(tempfile.mkdtemp(prefix="test-parallel-"))
        try:
            dump_store(service.archive.store, directory)
            digest = hashlib.sha256()
            for path in sorted(directory.glob("*.jsonl")):
                digest.update(path.name.encode("utf-8"))
                digest.update(path.read_bytes())
            return digest.hexdigest(), reports, quotas
        finally:
            shutil.rmtree(directory, ignore_errors=True)
    finally:
        service.close()


class TestWorkerCountInvariance:
    def test_archive_bytes_identical_across_worker_counts(self):
        serial_digest, _, _ = _run_service(None)
        for workers in (1, 2, 4):
            digest, _, _ = _run_service(workers)
            assert digest == serial_digest, \
                f"workers={workers} diverged from the serial collector"

    def test_archive_bytes_identical_under_chaos(self):
        serial_digest, serial_reports, _ = _run_service(None, chaos="moderate")
        digest, reports, _ = _run_service(4, chaos="moderate")
        assert digest == serial_digest
        assert [dataclasses.asdict(r) for r in reports] == \
            [dataclasses.asdict(r) for r in serial_reports]

    def test_reports_equal_the_serial_collectors(self):
        _, serial_reports, _ = _run_service(None)
        _, engine_reports, _ = _run_service(1)
        assert [dataclasses.asdict(r) for r in engine_reports] == \
            [dataclasses.asdict(r) for r in serial_reports]

    def test_per_account_quota_parity(self):
        """Admission runs serially in plan order, so every account is
        charged the exact queries the serial collector charges it."""
        _, _, serial_quotas = _run_service(None)
        _, _, engine_quotas = _run_service(4)
        assert engine_quotas == serial_quotas
        assert sum(serial_quotas.values()) > 0


class TestShardRanges:
    def test_concatenation_reproduces_the_sequence(self):
        for count in (0, 1, 5, 17, 100):
            for shards in (1, 2, 3, 8):
                spans = shard_ranges(count, shards)
                covered = [i for start, end in spans
                           for i in range(start, end)]
                assert covered == list(range(count))

    def test_sizes_differ_by_at_most_one(self):
        for count in (1, 7, 23, 100):
            for shards in (1, 2, 5, 9):
                sizes = [end - start
                         for start, end in shard_ranges(count, shards)]
                assert all(size > 0 for size in sizes)
                assert max(sizes) - min(sizes) <= 1

    def test_never_more_shards_than_items(self):
        assert len(shard_ranges(3, 8)) == 3
        assert shard_ranges(0, 4) == []

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ValueError):
            shard_ranges(5, 0)


class TestEngineLifecycle:
    def test_context_manager_closes_pool(self):
        with ParallelCollectionEngine(workers=2) as engine:
            assert engine.workers == 2
        # double-close must be harmless
        engine.close()

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError):
            ParallelCollectionEngine(workers=0)


class TestShardReportMerge:
    def test_disjoint_account_shards_merge_sum_free(self):
        """Shard-local reports never carry ``accounts_used`` (the pool is
        shared, so per-shard counts would double-count an account that
        served two shards); the round-end report stamps the pool-derived
        value once.  Merging shard reports therefore must not inflate
        the merged count past the authoritative stamp."""
        shard_a = CollectionReport(queries_issued=4, records_written=12)
        shard_b = CollectionReport(queries_issued=4, records_written=9)
        assert shard_a.accounts_used == 0 and shard_b.accounts_used == 0
        merged = shard_a.merge(shard_b)
        assert merged.accounts_used == 0
        merged.accounts_used = 3  # the round-end pool-derived stamp
        final = merged.merge(CollectionReport())
        assert final.accounts_used == 3  # max propagates, nothing sums


class TestSanitized:
    """The parallel engine under the runtime concurrency sanitizer.

    ``conc_sanitizer`` (tests/conftest.py) asserts at teardown that the
    run produced zero lock-order cycles and zero unguarded off-owner
    shared writes -- the acceptance bar for the spotconc subsystem.
    """

    def test_multiworker_round_is_race_free(self, conc_sanitizer):
        digest, reports, _ = _run_service(4, rounds=2)
        assert digest and all(isinstance(r, CollectionReport)
                              for r in reports)

    def test_sanitized_run_matches_unsanitized_digest(self, conc_sanitizer):
        # the sanitizer observes; it must never perturb the archive bytes
        digest, _, _ = _run_service(2, rounds=2)
        assert digest == _run_service(2, rounds=2)[0]
