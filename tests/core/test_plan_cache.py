"""Plan cache: zero warm solves, targeted invalidation, disk round-trip.

The cache's contract has three legs: (1) it never changes the plan --
cached and uncached constructions are equal; (2) an unchanged offering
map replans with *zero* solver calls (asserted against the solver's
process-wide counters); (3) catalog drift re-solves only the types whose
content fingerprints moved.
"""

import json

import pytest

from repro.core.plan_cache import CACHE_VERSION, PlanCache, type_signature
from repro.core.query_planner import plan_for_offering_map
from repro.solver import STATS

OFFERINGS = {
    "m9.large": {"rg-one-1": 3, "rg-two-1": 2, "rg-three-1": 3},
    "m9.xlarge": {"rg-one-1": 3, "rg-two-1": 2, "rg-three-1": 3},
    "p9.2xlarge": {"rg-one-1": 2, "rg-two-1": 2},
    "c9.metal": {"rg-one-1": 1},
}


class TestPlanEquality:
    def test_cached_plan_equals_direct_construction(self):
        for algorithm in ("exact", "ffd", "naive"):
            direct = plan_for_offering_map(OFFERINGS, algorithm=algorithm)
            cached = PlanCache().plan(OFFERINGS, algorithm=algorithm)
            assert cached.queries == direct.queries
            assert cached.naive_query_count == direct.naive_query_count
            assert cached.pair_bound_query_count == \
                direct.pair_bound_query_count

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(ValueError):
            PlanCache().plan(OFFERINGS, algorithm="magic")


class TestZeroWarmSolves:
    def test_second_construction_makes_no_solver_calls(self):
        cache = PlanCache()
        STATS.reset()
        cold = cache.plan(OFFERINGS)
        assert STATS.total_calls > 0, "cold build must actually solve"
        STATS.reset()
        warm = cache.plan(OFFERINGS)
        assert STATS.total_calls == 0, \
            "warm replan of an unchanged catalog must not touch the solver"
        assert warm.queries == cold.queries
        assert cache.hits == len(OFFERINGS)

    def test_shared_memo_collapses_identical_profiles(self):
        """Types with the same (weights, capacity) offering profile share
        one solver subproblem: N such types cost one solve, not N."""
        cache = PlanCache()
        STATS.reset()
        cache.plan({"m9.large": OFFERINGS["m9.large"]})
        solves_for_one = STATS.total_calls
        STATS.reset()
        PlanCache().plan(OFFERINGS)
        # m9.large and m9.xlarge share a profile -> 3 distinct subproblems
        # for 4 types; the duplicate type must not add solver calls
        assert STATS.total_calls == 3 * solves_for_one


class TestTargetedInvalidation:
    def test_single_type_drift_resolves_only_that_type(self):
        cache = PlanCache()
        cache.plan(OFFERINGS)
        cache.hits = cache.misses = 0
        drifted = {t: dict(z) for t, z in OFFERINGS.items()}
        drifted["p9.2xlarge"]["rg-three-1"] = 1  # region launch
        STATS.reset()
        cache.plan(drifted)
        assert cache.misses == 1
        assert cache.hits == len(OFFERINGS) - 1
        assert STATS.total_calls > 0

    def test_signature_covers_every_packing_input(self):
        base = type_signature("m9.large", {"r1": 3, "r2": 2}, 10, "exact")
        assert type_signature("m9.xlarge", {"r1": 3, "r2": 2}, 10,
                              "exact") != base
        assert type_signature("m9.large", {"r1": 3, "r2": 1}, 10,
                              "exact") != base
        assert type_signature("m9.large", {"r1": 3, "r2": 2}, 9,
                              "exact") != base
        assert type_signature("m9.large", {"r1": 3, "r2": 2}, 10,
                              "ffd") != base
        # dict ordering must not matter (content, not construction order)
        assert type_signature("m9.large", {"r2": 2, "r1": 3}, 10,
                              "exact") == base


class TestPersistence:
    def test_roundtrip_replans_without_solving(self, tmp_path):
        path = str(tmp_path / "plan-cache.json")
        first = PlanCache()
        first.plan(OFFERINGS)
        assert first.dirty
        first.save(path)
        assert not first.dirty

        restored = PlanCache()
        assert restored.load(path) == len(first._groups)
        STATS.reset()
        plan = restored.plan(OFFERINGS)
        assert STATS.total_calls == 0
        assert plan.queries == plan_for_offering_map(OFFERINGS).queries

    def test_missing_and_corrupt_files_load_nothing(self, tmp_path):
        cache = PlanCache()
        assert cache.load(str(tmp_path / "absent.json")) == 0
        garbled = tmp_path / "garbled.json"
        garbled.write_text("{not json", encoding="utf-8")
        assert cache.load(str(garbled)) == 0
        skewed = tmp_path / "skewed.json"
        skewed.write_text(json.dumps({"version": CACHE_VERSION + 1,
                                      "entries": {}}), encoding="utf-8")
        assert cache.load(str(skewed)) == 0
        assert len(cache) == 0

    def test_loaded_entries_never_clobber_live_ones(self, tmp_path):
        path = str(tmp_path / "plan-cache.json")
        stale = PlanCache()
        stale.plan(OFFERINGS)
        stale.save(path)
        live = PlanCache()
        live.plan(OFFERINGS)
        before = dict(live._groups)
        assert live.load(path) == 0  # all signatures already present
        assert live._groups == before


class TestSharedInstance:
    def test_shared_is_a_singleton_until_reset(self):
        PlanCache.reset_shared()
        first = PlanCache.shared()
        assert PlanCache.shared() is first
        PlanCache.reset_shared()
        assert PlanCache.shared() is not first


class TestThreadSafety:
    def test_concurrent_plans_agree_and_count_consistently(self):
        """N threads planning the same map: identical plans, exact totals.

        The per-instance lock means hits + misses must equal the total
        number of (thread, type) lookups even under contention, and every
        thread sees the same QueryPlan bytes.
        """
        import threading

        cache = PlanCache()
        reference = plan_for_offering_map(OFFERINGS)
        plans = [None] * 8
        barrier = threading.Barrier(len(plans))

        def worker(slot):
            barrier.wait()
            plans[slot] = cache.plan(OFFERINGS)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(len(plans))]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for plan in plans:
            assert plan.queries == reference.queries
        counters = cache.stats()
        assert counters["hits"] + counters["misses"] == \
            len(plans) * len(OFFERINGS)
        assert counters["entries"] == len(OFFERINGS)

    def test_shared_singleton_is_created_once_under_contention(self):
        import threading

        PlanCache.reset_shared()
        seen = []
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()
            seen.append(PlanCache.shared())

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        PlanCache.reset_shared()
        assert len({id(cache) for cache in seen}) == 1
