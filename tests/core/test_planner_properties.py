"""Property-based planner invariants over randomized offering maps.

The packing algorithms trade solver effort for query count; whatever the
catalog shape, three orderings and bounds must hold:

* exact never needs more queries than ffd, ffd never more than naive
  (per type -- the solvers only interact within one type's offering);
* every offered (type, region) pair appears in exactly one query of the
  exact plan (complete, non-overlapping coverage);
* no query's summed zone count exceeds ``MAX_SPS_RESULTS`` -- the API
  cap the packing exists to respect.
"""

from hypothesis import given, settings, strategies as st

from repro.cloudsim.ec2_api import MAX_SPS_RESULTS
from repro.core.query_planner import plan_for_offering_map

region_names = st.sampled_from(
    [f"rg-{chr(ord('a') + i)}-1" for i in range(12)])

offering_maps = st.dictionaries(
    keys=st.sampled_from([f"fam{i}.large" for i in range(8)]),
    values=st.dictionaries(keys=region_names,
                           values=st.integers(min_value=1,
                                              max_value=MAX_SPS_RESULTS),
                           min_size=1, max_size=10),
    min_size=1, max_size=6)


class TestPlannerProperties:
    @given(offering_maps)
    @settings(max_examples=30, deadline=None)
    def test_algorithm_ordering_exact_ffd_naive(self, offerings):
        exact = plan_for_offering_map(offerings, algorithm="exact")
        ffd = plan_for_offering_map(offerings, algorithm="ffd")
        naive = plan_for_offering_map(offerings, algorithm="naive")
        assert len(exact.queries) <= len(ffd.queries) <= len(naive.queries)
        assert len(naive.queries) == naive.naive_query_count

    @given(offering_maps)
    @settings(max_examples=30, deadline=None)
    def test_exact_plan_covers_every_pair_exactly_once(self, offerings):
        plan = plan_for_offering_map(offerings, algorithm="exact")
        covered = [(q.instance_type, region)
                   for q in plan.queries for region in q.regions]
        expected = [(itype, region)
                    for itype, zones in offerings.items() for region in zones]
        assert sorted(covered) == sorted(expected)

    @given(offering_maps, st.sampled_from(["exact", "ffd"]))
    @settings(max_examples=30, deadline=None)
    def test_no_query_overflows_the_result_cap(self, offerings, algorithm):
        plan = plan_for_offering_map(offerings, algorithm=algorithm)
        for query in plan.queries:
            rows = sum(offerings[query.instance_type][region]
                       for region in query.regions)
            assert rows <= MAX_SPS_RESULTS
