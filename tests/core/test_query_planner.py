"""Tests for the bin-packed SPS query planner."""

import pytest

from repro.core import SpsQuery, pack_example, plan_for_catalog, plan_for_offering_map


SMALL_MAP = {
    "a.large": {"r1": 6, "r2": 4, "r3": 3, "r4": 3},
    "b.large": {"r1": 2, "r2": 2},
}


class TestPlanForOfferingMap:
    def test_queries_respect_row_cap(self):
        plan = plan_for_offering_map(SMALL_MAP, capacity=10)
        for query in plan.queries:
            rows = sum(SMALL_MAP[query.instance_type][r] for r in query.regions)
            assert rows <= 10

    def test_every_pair_covered_exactly_once(self):
        plan = plan_for_offering_map(SMALL_MAP)
        covered = [(q.instance_type, r) for q in plan.queries for r in q.regions]
        expected = [(t, r) for t, regions in SMALL_MAP.items() for r in regions]
        assert sorted(covered) == sorted(expected)

    def test_counts(self):
        plan = plan_for_offering_map(SMALL_MAP)
        assert plan.naive_query_count == 6
        # a: 6+4=10, 3+3=6 -> 2 bins; b: 2+2=4 -> 1 bin
        assert plan.optimized_query_count == 3
        assert plan.reduction_factor == 2.0

    def test_pair_bound(self):
        plan = plan_for_offering_map(SMALL_MAP)
        assert plan.pair_bound_query_count == 2 * 4  # 2 types x 4 regions seen
        assert plan.bound_reduction_factor == 8 / 3

    def test_naive_algorithm(self):
        plan = plan_for_offering_map(SMALL_MAP, algorithm="naive")
        assert plan.optimized_query_count == plan.naive_query_count
        assert all(len(q.regions) == 1 for q in plan.queries)

    def test_ffd_algorithm_valid(self):
        plan = plan_for_offering_map(SMALL_MAP, algorithm="ffd")
        covered = [(q.instance_type, r) for q in plan.queries for r in q.regions]
        assert len(covered) == len(set(covered)) == 6

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError):
            plan_for_offering_map(SMALL_MAP, algorithm="magic")

    def test_oversized_region_clamped(self):
        """A region with more zones than the cap still fits in one query
        (the API would truncate its rows)."""
        plan = plan_for_offering_map({"a.large": {"big": 14}}, capacity=10)
        assert plan.optimized_query_count == 1


class TestCatalogPlan:
    def test_full_catalog_scale(self, cloud):
        plan = plan_for_catalog(cloud.catalog)
        assert plan.pair_bound_query_count == 9299  # 547 x 17, the paper's bound
        assert 1800 < plan.optimized_query_count < 2600  # paper: 2,226
        assert plan.bound_reduction_factor > 3.5  # paper: ~4.5x

    def test_pack_example_shape(self, cloud):
        groups = pack_example(cloud.catalog.offering_map(), "p3.2xlarge")
        for group in groups:
            assert sum(zones for _, zones in group) <= 10


class TestSpsQuery:
    def test_expected_rows(self):
        query = SpsQuery("m5.large", ("r1", "r2", "r3"))
        assert query.expected_rows == 3
        assert query.single_availability_zone
