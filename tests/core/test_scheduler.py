"""Tests for the collection scheduler."""

import pytest

from repro.cloudsim import SimulationClock
from repro.core import CollectionScheduler
from repro.core.collectors import CollectionReport


def make_job(counter):
    def collect():
        counter.append(1)
        return CollectionReport(queries_issued=1)
    return collect


class TestRegistration:
    def test_duplicate_name_rejected(self):
        scheduler = CollectionScheduler(SimulationClock())
        scheduler.register("a", make_job([]))
        with pytest.raises(ValueError):
            scheduler.register("a", make_job([]))

    def test_nonpositive_period_rejected(self):
        scheduler = CollectionScheduler(SimulationClock())
        with pytest.raises(ValueError):
            scheduler.register("a", make_job([]), period=0)


class TestExecution:
    def test_cadence(self):
        clock = SimulationClock()
        scheduler = CollectionScheduler(clock)
        runs = []
        scheduler.register("sps", make_job(runs), period=600)
        total = scheduler.run_for(3600, step=600)
        # fires at t=0, 600, ..., 3600 -> 7 runs
        assert sum(runs) == 7
        assert total == 7

    def test_mixed_periods(self):
        clock = SimulationClock()
        scheduler = CollectionScheduler(clock)
        fast, slow = [], []
        scheduler.register("fast", make_job(fast), period=600)
        scheduler.register("slow", make_job(slow), period=1800)
        scheduler.run_for(3600, step=600)
        assert sum(fast) == 7
        assert sum(slow) == 3  # t=0, 1800, 3600

    def test_initial_delay(self):
        clock = SimulationClock()
        scheduler = CollectionScheduler(clock)
        runs = []
        scheduler.register("later", make_job(runs), period=600,
                           initial_delay=1200)
        scheduler.run_for(1200, step=600)
        assert sum(runs) == 1

    def test_history_recorded(self):
        clock = SimulationClock()
        scheduler = CollectionScheduler(clock)
        scheduler.register("a", make_job([]), period=600)
        scheduler.run_for(600, step=600)
        assert [name for _, name in scheduler.history] == ["a", "a"]

    def test_catchup_after_stall(self):
        """A long stall fires the job once, then resumes the cadence."""
        clock = SimulationClock()
        scheduler = CollectionScheduler(clock)
        runs = []
        job = scheduler.register("a", make_job(runs), period=600)
        scheduler.run_due()
        clock.advance(10_000)  # miss many periods
        scheduler.run_due()
        assert sum(runs) == 2
        assert job.next_due > clock.now()

    def test_job_report_stored(self):
        clock = SimulationClock()
        scheduler = CollectionScheduler(clock)
        job = scheduler.register("a", make_job([]), period=600)
        scheduler.run_due()
        assert job.last_report.queries_issued == 1
        assert job.runs == 1


class TestRuntimeAccounting:
    """The injectable host timer annotates history without touching
    scheduling: durations are observability, sim time drives cadence."""

    @staticmethod
    def _fake_timer(step=2.5):
        reading = [0.0]

        def timer():
            reading[0] += step
            return reading[0]
        return timer

    def test_durations_recorded_per_run_and_per_job(self):
        clock = SimulationClock()
        scheduler = CollectionScheduler(clock, timer=self._fake_timer())
        job = scheduler.register("a", make_job([]), period=600)
        scheduler.run_for(600, step=600)
        assert job.runs == 2
        # each run brackets the body with two timer reads 2.5s apart
        assert job.total_runtime == pytest.approx(5.0)
        assert [entry.duration for entry in scheduler.history] == \
            pytest.approx([2.5, 2.5])

    def test_failed_runs_still_charge_runtime(self):
        clock = SimulationClock()
        scheduler = CollectionScheduler(clock, timer=self._fake_timer())

        def explode():
            raise RuntimeError("boom")

        job = scheduler.register("bad", explode, period=600)
        scheduler.run_due()
        assert job.failures == 1
        assert job.total_runtime == pytest.approx(2.5)
        assert scheduler.history[-1].duration == pytest.approx(2.5)

    def test_fake_timer_never_affects_cadence(self):
        clock = SimulationClock()
        with_timer = CollectionScheduler(clock, timer=self._fake_timer(99.0))
        runs = []
        with_timer.register("a", make_job(runs), period=600)
        with_timer.run_for(3600, step=600)
        assert sum(runs) == 7  # same cadence as the wall-clock default
