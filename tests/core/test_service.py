"""Tests for the assembled SpotLake service."""

import pytest

from repro import ServiceConfig, SpotLakeService


class TestWiring:
    def test_plan_restricted_to_configured_types(self, small_service):
        types = {q.instance_type for q in small_service.plan.queries}
        assert types <= set(small_service.config.instance_types)

    def test_account_pool_sized_for_plan(self, small_service):
        from repro import AccountPool
        needed = AccountPool.size_for(small_service.plan.optimized_query_count)
        assert len(small_service.accounts) == needed

    def test_three_jobs_registered(self, small_service):
        names = {job.name for job in small_service.scheduler.jobs()}
        assert names == {"sps", "advisor", "price"}


class TestCollection:
    def test_collect_once_populates_all_tables(self, small_service):
        reports = small_service.collect_once()
        assert reports["sps"].records_written > 0
        assert reports["advisor"].records_written > 0
        assert reports["price"].records_written > 0
        stats = small_service.archive.stats()
        assert all(stats[t]["records_written"] > 0
                   for t in ("sps", "advisor", "price"))

    def test_run_collection_advances_clock(self, small_service):
        before = small_service.cloud.clock.now()
        runs = small_service.run_collection(1800)
        assert small_service.cloud.clock.now() == before + 1800
        assert runs >= 3  # each collector fires at least once

    def test_served_data_matches_engine(self, small_service):
        small_service.collect_once()
        cloud = small_service.cloud
        now = cloud.clock.now()
        zone = cloud.catalog.supported_zones("m5.large", "us-east-1")[0]
        response = small_service.gateway.get("/latest", {
            "instance_type": "m5.large", "region": "us-east-1",
            "zone": zone, "at": str(now)})
        assert response.status == 200
        assert response.body["sps"] == cloud.placement.zone_score(
            "m5.large", "us-east-1", zone, now)
        assert response.body["spot_price"] == cloud.pricing.spot_price(
            "m5.large", "us-east-1", now, zone)


class TestBulkBackfill:
    def test_backfill_equivalent_to_collection(self, small_service):
        """The fast path writes the same values the collectors would."""
        cloud = small_service.cloud
        t = cloud.clock.now()
        pools = [p for p in cloud.catalog.all_pools()
                 if p[0] == "m5.large"][:3]
        small_service.bulk_backfill([t], pools=pools)
        for itype, region, zone in pools:
            assert small_service.archive.sps_at(itype, region, zone, t) == \
                cloud.placement.zone_score(itype, region, zone, t)

    def test_backfill_respects_type_restriction(self, small_service):
        t = small_service.cloud.clock.now()
        small_service.bulk_backfill([t])
        keys = small_service.archive.sps.series_keys("sps")
        types = {k.dimension_dict["InstanceType"] for k in keys}
        assert types <= set(small_service.config.instance_types)

    def test_backfill_returns_record_count(self, small_service):
        t = small_service.cloud.clock.now()
        pools = [p for p in small_service.cloud.catalog.all_pools()
                 if p[0] == "m5.large"][:2]
        written = small_service.bulk_backfill([t, t + 600], pools=pools,
                                              include_price=False)
        # 2 instants x (2 sps records + 1 advisor pair x 3 measures)
        assert written == 2 * (2 + 3)
