"""Tests for the API-gateway/Lambda-style serving layer."""

import json

import pytest

from repro.core import (
    ApiGateway,
    MetricsRegistry,
    Response,
    SpotLakeArchive,
    decode_cursor,
    encode_cursor,
)


def populated_archive(**kwargs):
    archive = SpotLakeArchive(**kwargs)
    archive.put_sps("m5.large", "us-east-1", "us-east-1a", 3, 0)
    archive.put_sps("m5.large", "us-east-1", "us-east-1a", 2, 100)
    archive.put_advisor("m5.large", "us-east-1", 0.03, 3.0, 70, 0)
    archive.put_price("m5.large", "us-east-1", "us-east-1a", 0.035, 0)
    return archive


@pytest.fixture()
def archive():
    return populated_archive()


@pytest.fixture()
def gateway(archive):
    return ApiGateway(archive)


class TestRouting:
    def test_routes_listed(self, gateway):
        assert "/sps/history" in gateway.routes()
        assert "/latest" in gateway.routes()

    def test_unknown_route_404(self, gateway):
        assert gateway.get("/nope").status == 404


class TestHistoryEndpoints:
    def test_sps_history(self, gateway):
        response = gateway.get("/sps/history", {
            "instance_type": "m5.large", "region": "us-east-1",
            "start": "0", "end": "1000"})
        assert response.status == 200
        assert response.body["count"] == 2
        assert response.body["rows"][0]["value"] == 3
        json.loads(response.json())  # serializable

    def test_advisor_history_measures(self, gateway):
        ok = gateway.get("/advisor/history", {
            "instance_type": "m5.large", "region": "us-east-1",
            "start": "0", "end": "10", "measure": "savings"})
        assert ok.status == 200
        bad = gateway.get("/advisor/history", {
            "instance_type": "m5.large", "region": "us-east-1",
            "start": "0", "end": "10", "measure": "weather"})
        assert bad.status == 400

    def test_price_history(self, gateway):
        response = gateway.get("/price/history", {
            "start": "0", "end": "10"})
        assert response.status == 200
        assert response.body["count"] == 1

    def test_missing_range_400(self, gateway):
        assert gateway.get("/sps/history", {}).status == 400

    def test_inverted_range_400(self, gateway):
        response = gateway.get("/sps/history",
                               {"start": "10", "end": "0"})
        assert response.status == 400

    def test_filters_narrow_results(self, gateway):
        response = gateway.get("/sps/history", {
            "instance_type": "c5.large", "start": "0", "end": "1000"})
        assert response.status == 200
        assert response.body["count"] == 0


class TestLatest:
    def test_full_payload(self, gateway):
        response = gateway.get("/latest", {
            "instance_type": "m5.large", "region": "us-east-1",
            "zone": "us-east-1a", "at": "150"})
        assert response.status == 200
        assert response.body["sps"] == 2
        assert response.body["if_score"] == 3.0
        assert response.body["spot_price"] == 0.035

    def test_region_only_payload(self, gateway):
        response = gateway.get("/latest", {
            "instance_type": "m5.large", "region": "us-east-1", "at": "50"})
        assert response.status == 200
        assert "sps" not in response.body
        assert response.body["savings"] == 70

    def test_missing_parameters_400(self, gateway):
        assert gateway.get("/latest", {"region": "us-east-1"}).status == 400

    def test_bad_timestamp_400(self, gateway):
        response = gateway.get("/latest", {
            "instance_type": "m5.large", "region": "us-east-1",
            "at": "noon"})
        assert response.status == 400


class TestStats:
    def test_stats_endpoint(self, gateway):
        response = gateway.get("/stats")
        assert response.status == 200
        assert response.body["sps"]["records_written"] == 2


class TestNonFiniteTimestamps:
    @pytest.mark.parametrize("start,end", [
        ("nan", "10"), ("0", "nan"), ("-inf", "10"), ("0", "inf"),
        ("NaN", "10"), ("0", "Infinity"),
    ])
    def test_history_rejects_non_finite_range(self, gateway, start, end):
        response = gateway.get("/sps/history", {"start": start, "end": end})
        assert response.status == 400

    def test_nan_range_does_not_silently_match(self, gateway):
        # regression: float("nan") passed the old `end < start` check
        response = gateway.get("/sps/history", {"start": "nan", "end": "nan"})
        assert response.status == 400

    @pytest.mark.parametrize("at", ["nan", "inf", "-inf"])
    def test_latest_rejects_non_finite_at(self, gateway, at):
        response = gateway.get("/latest", {
            "instance_type": "m5.large", "region": "us-east-1", "at": at})
        assert response.status == 400


class TestJsonEnvelope:
    def test_nan_measure_serializes_as_null(self, archive, gateway):
        archive.put_price("m5.large", "us-east-1", "us-east-1a",
                          float("nan"), 50)
        response = gateway.get("/price/history", {"start": "0", "end": "100"})
        assert response.status == 200
        parsed = json.loads(response.json())  # spec-compliant parse
        assert parsed["rows"][-1]["value"] is None
        assert "NaN" not in response.json()

    def test_infinite_measure_serializes_as_null(self, archive, gateway):
        archive.put_price("m5.large", "us-east-1", "us-east-1a",
                          float("inf"), 50)
        response = gateway.get("/price/history", {"start": "0", "end": "100"})
        assert json.loads(response.json())["rows"][-1]["value"] is None

    def test_plain_nan_body_never_emits_bare_literal(self):
        response = Response(200, {"x": float("nan"), "nested": [float("-inf")]})
        assert json.loads(response.json()) == {"x": None, "nested": [None]}


class TestServerErrors:
    def test_unexpected_handler_exception_maps_to_500(self, gateway):
        def boom(params):
            raise RuntimeError("handler crashed")
        gateway._routes["/boom"] = boom
        response = gateway.get("/boom")
        assert response.status == 500
        assert response.body["error"] == "internal server error"
        assert response.body["exception"] == "RuntimeError"

    def test_500_counted_in_metrics(self, gateway):
        gateway._routes["/boom"] = lambda p: 1 / 0
        gateway.get("/boom")
        snapshot = gateway.metrics.snapshot()
        assert snapshot["routes"]["/boom"]["server_errors"] == 1
        assert snapshot["totals"]["server_errors"] == 1

    def test_bad_request_is_not_a_server_error(self, gateway):
        gateway.get("/sps/history", {})
        snapshot = gateway.metrics.snapshot()
        assert snapshot["totals"]["server_errors"] == 0


class TestRouteMatrix:
    """Every route x outcome class the gateway can produce."""

    OK_REQUESTS = [
        ("/sps/history", {"start": "0", "end": "1000"}),
        ("/advisor/history", {"start": "0", "end": "1000"}),
        ("/price/history", {"start": "0", "end": "1000"}),
        ("/latest", {"instance_type": "m5.large", "region": "us-east-1",
                     "at": "50"}),
        ("/stats", {}),
        ("/metrics", {}),
    ]

    @pytest.mark.parametrize("path,params", OK_REQUESTS)
    def test_200(self, gateway, path, params):
        response = gateway.get(path, params)
        assert response.status == 200
        json.loads(response.json())

    BAD_REQUESTS = [
        ("/sps/history", {}),
        ("/advisor/history", {"start": "0", "end": "1", "measure": "x"}),
        ("/price/history", {"start": "5", "end": "1"}),
        ("/latest", {"instance_type": "m5.large", "region": "us-east-1",
                     "at": "noon"}),
        ("/sps/history", {"start": "0", "end": "1", "limit": "-3"}),
        ("/sps/history", {"start": "0", "end": "1", "limit": "many"}),
        ("/sps/history", {"start": "0", "end": "1", "next_token": "!!!"}),
    ]

    @pytest.mark.parametrize("path,params", BAD_REQUESTS)
    def test_400(self, gateway, path, params):
        assert gateway.get(path, params).status == 400

    def test_404(self, gateway):
        assert gateway.get("/sps").status == 404

    def test_500(self, gateway):
        gateway._routes["/boom"] = lambda p: {}[1]
        assert gateway.get("/boom").status == 500


class TestPagination:
    def fill(self, archive, n=10):
        for i in range(n):
            archive.put_sps("m5.large", "us-east-1", "us-east-1a",
                            (i % 3) + 1, 200 + i * 10)

    def test_limit_bounds_the_page(self, archive, gateway):
        self.fill(archive)
        response = gateway.get("/sps/history", {
            "start": "0", "end": "1e9", "limit": "4"})
        assert response.status == 200
        assert response.body["count"] == 4
        assert len(response.body["rows"]) == 4
        assert response.body["total"] > 4
        assert response.body["next_token"]

    def test_walking_pages_covers_every_row_once(self, archive, gateway):
        self.fill(archive)
        full = gateway.get("/sps/history", {"start": "0", "end": "1e9"})
        walked, token, pages = [], None, 0
        while True:
            params = {"start": "0", "end": "1e9", "limit": "3"}
            if token:
                params["next_token"] = token
            page = gateway.get("/sps/history", params)
            assert page.status == 200
            walked.extend(page.body["rows"])
            pages += 1
            token = page.body["next_token"]
            if token is None:
                break
        assert walked == full.body["rows"]
        assert pages == -(-full.body["total"] // 3)

    def test_cursor_stable_across_writes(self, archive, gateway):
        self.fill(archive)
        page1 = gateway.get("/sps/history", {
            "start": "0", "end": "1e9", "limit": "3"})
        expected_next = gateway.get("/sps/history", {
            "start": "0", "end": "1e9", "limit": "3",
            "next_token": page1.body["next_token"]}).body["rows"]
        # a write lands between page fetches (including one sorting
        # *before* the cursor, via a brand-new series with an old time)
        archive.put_sps("a1.large", "us-east-1", "us-east-1a", 1, 5)
        archive.put_sps("m5.large", "us-east-1", "us-east-1a", 3, 99999)
        page2 = gateway.get("/sps/history", {
            "start": "0", "end": "1e9", "limit": "3",
            "next_token": page1.body["next_token"]})
        assert page2.status == 200
        # the cursor is positional-by-value: no skipped or repeated rows
        assert page2.body["rows"] == expected_next

    def test_cursor_roundtrip(self):
        pos = (123.5, "sps", (("InstanceType", "m5.large"),
                              ("Region", "us-east-1")))
        assert decode_cursor(encode_cursor(pos)) == pos

    def test_exhausted_page_has_no_token(self, gateway):
        response = gateway.get("/sps/history", {
            "start": "0", "end": "1e9", "limit": "100"})
        assert response.body["next_token"] is None

    def test_token_without_limit_resumes_to_the_end(self, archive, gateway):
        self.fill(archive)
        page1 = gateway.get("/sps/history", {
            "start": "0", "end": "1e9", "limit": "3"})
        rest = gateway.get("/sps/history", {
            "start": "0", "end": "1e9",
            "next_token": page1.body["next_token"]})
        assert rest.body["count"] == rest.body["total"] - 3
        assert rest.body["next_token"] is None


class TestMetricsRoute:
    def test_metrics_payload_shape(self, gateway):
        gateway.get("/sps/history", {"start": "0", "end": "1000"})
        gateway.get("/nope")
        response = gateway.get("/metrics")
        assert response.status == 200
        body = response.body
        assert set(body) == {"routes", "tenants", "totals", "cache",
                             "analytics"}
        route = body["routes"]["/sps/history"]
        assert route["requests"] == 1
        assert route["by_status"] == {"200": 1}
        assert set(route["latency"]) == {"p50_ms", "p95_ms", "p99_ms",
                                         "max_ms", "mean_ms"}
        assert body["routes"]["<unknown>"]["by_status"] == {"404": 1}
        assert body["totals"]["requests"] == 2
        assert body["cache"]["enabled"] is True
        json.loads(response.json())

    def test_rows_served_counted(self, gateway):
        gateway.get("/sps/history", {"start": "0", "end": "1000"})
        body = gateway.get("/metrics").body
        assert body["routes"]["/sps/history"]["rows_served"] == 2

    def test_cache_hits_surface_in_metrics(self, gateway):
        params = {"start": "0", "end": "1000"}
        gateway.get("/sps/history", params)
        gateway.get("/sps/history", params)
        cache = gateway.get("/metrics").body["cache"]
        assert cache["hits"] >= 1
        assert 0.0 < cache["hit_rate"] <= 1.0


class TestCacheBehaviourThroughGateway:
    def test_repeated_history_is_memoized(self, gateway):
        params = {"start": "0", "end": "1000"}
        first = gateway.get("/sps/history", params)
        renders = gateway.handlers._render_calls
        second = gateway.get("/sps/history", params)
        assert gateway.handlers._render_calls == renders  # no re-render
        assert second.json() == first.json()

    def test_overlapping_write_invalidates_through_gateway(self, archive,
                                                           gateway):
        params = {"start": "0", "end": "1e9"}
        assert gateway.get("/sps/history", params).body["total"] == 2
        archive.put_sps("m5.large", "us-east-1", "us-east-1a", 1, 500)
        assert gateway.get("/sps/history", params).body["total"] == 3

    def test_cache_disabled_archive_serves_identically(self):
        cached = ApiGateway(populated_archive(cache=True))
        uncached = ApiGateway(populated_archive(cache=False))
        for path, params in TestRouteMatrix.OK_REQUESTS[:-1]:  # not /metrics
            a = cached.get(path, dict(params))
            b = uncached.get(path, dict(params))
            assert (a.status, a.json()) == (b.status, b.json()), path
