"""Tests for the API-gateway/Lambda-style serving layer."""

import json

import pytest

from repro.core import ApiGateway, SpotLakeArchive


@pytest.fixture()
def gateway():
    archive = SpotLakeArchive()
    archive.put_sps("m5.large", "us-east-1", "us-east-1a", 3, 0)
    archive.put_sps("m5.large", "us-east-1", "us-east-1a", 2, 100)
    archive.put_advisor("m5.large", "us-east-1", 0.03, 3.0, 70, 0)
    archive.put_price("m5.large", "us-east-1", "us-east-1a", 0.035, 0)
    return ApiGateway(archive)


class TestRouting:
    def test_routes_listed(self, gateway):
        assert "/sps/history" in gateway.routes()
        assert "/latest" in gateway.routes()

    def test_unknown_route_404(self, gateway):
        assert gateway.get("/nope").status == 404


class TestHistoryEndpoints:
    def test_sps_history(self, gateway):
        response = gateway.get("/sps/history", {
            "instance_type": "m5.large", "region": "us-east-1",
            "start": "0", "end": "1000"})
        assert response.status == 200
        assert response.body["count"] == 2
        assert response.body["rows"][0]["value"] == 3
        json.loads(response.json())  # serializable

    def test_advisor_history_measures(self, gateway):
        ok = gateway.get("/advisor/history", {
            "instance_type": "m5.large", "region": "us-east-1",
            "start": "0", "end": "10", "measure": "savings"})
        assert ok.status == 200
        bad = gateway.get("/advisor/history", {
            "instance_type": "m5.large", "region": "us-east-1",
            "start": "0", "end": "10", "measure": "weather"})
        assert bad.status == 400

    def test_price_history(self, gateway):
        response = gateway.get("/price/history", {
            "start": "0", "end": "10"})
        assert response.status == 200
        assert response.body["count"] == 1

    def test_missing_range_400(self, gateway):
        assert gateway.get("/sps/history", {}).status == 400

    def test_inverted_range_400(self, gateway):
        response = gateway.get("/sps/history",
                               {"start": "10", "end": "0"})
        assert response.status == 400

    def test_filters_narrow_results(self, gateway):
        response = gateway.get("/sps/history", {
            "instance_type": "c5.large", "start": "0", "end": "1000"})
        assert response.status == 200
        assert response.body["count"] == 0


class TestLatest:
    def test_full_payload(self, gateway):
        response = gateway.get("/latest", {
            "instance_type": "m5.large", "region": "us-east-1",
            "zone": "us-east-1a", "at": "150"})
        assert response.status == 200
        assert response.body["sps"] == 2
        assert response.body["if_score"] == 3.0
        assert response.body["spot_price"] == 0.035

    def test_region_only_payload(self, gateway):
        response = gateway.get("/latest", {
            "instance_type": "m5.large", "region": "us-east-1", "at": "50"})
        assert response.status == 200
        assert "sps" not in response.body
        assert response.body["savings"] == 70

    def test_missing_parameters_400(self, gateway):
        assert gateway.get("/latest", {"region": "us-east-1"}).status == 400

    def test_bad_timestamp_400(self, gateway):
        response = gateway.get("/latest", {
            "instance_type": "m5.large", "region": "us-east-1",
            "at": "noon"})
        assert response.status == 400


class TestStats:
    def test_stats_endpoint(self, gateway):
        response = gateway.get("/stats")
        assert response.status == 200
        assert response.body["sps"]["records_written"] == 2
