"""The project call graph: resolution, reachability, seeds, globals."""

import ast
import textwrap

from repro.devtools.callgraph import CallGraph


def build(**modules):
    """CallGraph from {dotted_module: source} keyword arguments."""
    entries = []
    for module, source in modules.items():
        package = module.split(".")[1] if module.count(".") > 1 else ""
        entries.append((f"{module.replace('.', '/')}.py", module, package,
                        ast.parse(textwrap.dedent(source))))
    return CallGraph.build(entries)


class TestResolution:
    def test_module_function_call(self):
        graph = build(**{"repro.core.a": """
            def helper():
                pass

            def main():
                helper()
            """})
        assert graph.callees("repro.core.a.main") == ("repro.core.a.helper",)

    def test_self_method_call(self):
        graph = build(**{"repro.core.a": """
            class Svc:
                def run(self):
                    self.step()

                def step(self):
                    pass
            """})
        assert graph.callees("repro.core.a.Svc.run") == \
            ("repro.core.a.Svc.step",)

    def test_imported_alias_call(self):
        graph = build(**{
            "repro.core.a": """
                from repro.core.b import worker

                def main():
                    worker()
                """,
            "repro.core.b": """
                def worker():
                    pass
                """,
        })
        assert graph.callees("repro.core.a.main") == ("repro.core.b.worker",)

    def test_relative_import_resolves(self):
        graph = build(**{
            "repro.core.a": """
                from .b import worker

                def main():
                    worker()
                """,
            "repro.core.b": """
                def worker():
                    pass
                """,
        })
        assert graph.callees("repro.core.a.main") == ("repro.core.b.worker",)

    def test_name_match_fallback_skips_builtin_methods(self):
        graph = build(**{"repro.core.a": """
            class Store:
                def append(self, x):
                    pass

            def main(rows):
                rows.append(1)
            """})
        # rows.append must NOT wire to Store.append: builtin-collection
        # method names never resolve through the name fallback
        assert graph.callees("repro.core.a.main") == ()

    def test_name_match_fallback_for_project_names(self):
        graph = build(**{"repro.core.a": """
            class Engine:
                def materialize(self):
                    pass

            def main(engine):
                engine.materialize()
            """})
        assert graph.callees("repro.core.a.main") == \
            ("repro.core.a.Engine.materialize",)

    def test_nested_function_and_lambda_registered(self):
        graph = build(**{"repro.core.a": """
            def outer():
                def inner():
                    pass
                fn = lambda x: x
                inner()
            """})
        assert "repro.core.a.outer.inner" in graph.functions
        assert any(".outer.<lambda>:" in q for q in graph.functions)
        assert graph.callees("repro.core.a.outer") == \
            ("repro.core.a.outer.inner",)


class TestReachability:
    GRAPH = {
        "repro.core.a": """
            def entry():
                middle()

            def middle():
                leaf()

            def leaf():
                pass

            def orphan():
                pass
            """,
    }

    def test_transitive_closure(self):
        graph = build(**self.GRAPH)
        reached = graph.reachable(["repro.core.a.entry"])
        assert "repro.core.a.leaf" in reached
        assert "repro.core.a.orphan" not in reached

    def test_call_path_is_shortest(self):
        graph = build(**self.GRAPH)
        path = graph.call_path(["repro.core.a.entry"], "repro.core.a.leaf")
        assert path == ["repro.core.a.entry", "repro.core.a.middle",
                        "repro.core.a.leaf"]

    def test_functions_matching_whole_segments(self):
        graph = build(**self.GRAPH)
        assert graph.functions_matching("entry") == ["repro.core.a.entry"]
        assert graph.functions_matching("try") == []  # not a suffix match


class TestPoolSeeds:
    def test_submit_target_and_closure_are_threaded(self):
        graph = build(**{"repro.core.a": """
            from concurrent.futures import ThreadPoolExecutor

            def work(x):
                step()

            def step():
                pass

            def main():
                with ThreadPoolExecutor() as pool:
                    pool.submit(work, 1)
            """})
        threaded = graph.threaded_functions()
        assert "repro.core.a.work" in threaded
        assert "repro.core.a.step" in threaded  # transitive callee
        assert "repro.core.a.main" not in threaded
        assert threaded["repro.core.a.work"].where().endswith(":12")

    def test_map_with_lambda_target(self):
        graph = build(**{"repro.core.a": """
            from concurrent.futures import ThreadPoolExecutor

            class Engine:
                def run(self, spans):
                    self.pool.map(lambda s: self.materialize(s), spans)

                def materialize(self, s):
                    pass
            """})
        threaded = graph.threaded_functions()
        assert "repro.core.a.Engine.materialize" in threaded
        assert any("<lambda>" in q for q in threaded)

    def test_no_seeds_without_futures_import(self):
        graph = build(**{"repro.core.a": """
            def main(pool):
                pool.submit(work)

            def work():
                pass
            """})
        assert graph.threaded_functions() == {}


class TestWatchedGlobals:
    def test_mutable_caps_global_is_watched(self):
        graph = build(**{"repro.core.a": """
            CACHE = {}
            _REGISTRY = []
            LIMIT = 10
            import threading
            _LOCK = threading.Lock()
            """})
        watched = graph.watched_globals()["repro.core.a"]
        assert "CACHE" in watched and "_REGISTRY" in watched
        assert "LIMIT" not in watched   # immutable scalar
        assert "_LOCK" not in watched   # locks are the guards

    def test_imported_alias_of_watched_global(self):
        graph = build(**{
            "repro.core.a": """
                STATS = {}
                """,
            "repro.core.b": """
                from repro.core.a import STATS as S
                """,
        })
        names = graph.watched_names_for("repro.core.b")
        assert names == {"S": "repro.core.a.STATS"}

    def test_extra_config_names(self):
        graph = build(**{"repro.core.a": "X = 1\n"})
        names = graph.watched_names_for("repro.core.a",
                                        extra=("repro.core.a.X",))
        assert names == {"X": "repro.core.a.X"}
