"""CONC001-003 + FLOW001 on seeded known-bad (and known-good) fixtures."""

import textwrap

from repro.devtools import lint_source, make_rules
from repro.devtools.config import LintConfig


def lint(source, codes, module="repro.core.snippet", package="core",
         config=None):
    return lint_source(textwrap.dedent(source), module=module,
                       package=package, config=config,
                       rules=make_rules(codes))


class TestConc001SharedWrite:
    BAD = """
        from concurrent.futures import ThreadPoolExecutor

        class Collector:
            def run(self, spans):
                with ThreadPoolExecutor() as pool:
                    pool.map(self.materialize, spans)

            def materialize(self, span):
                self.rows[span] = 1          # shared dict write
                self.count += 1              # shared attribute write
        """

    def test_unlocked_worker_mutation_fires(self):
        result = lint(self.BAD, ["CONC001"])
        assert [f.rule for f in result.findings] == ["CONC001", "CONC001"]
        assert "pool worker" in result.findings[0].message
        # the message names the dispatch site so the report is actionable
        assert ":7" in result.findings[0].message

    def test_lock_guard_silences(self):
        result = lint("""
            from concurrent.futures import ThreadPoolExecutor

            class Collector:
                def run(self, spans):
                    with ThreadPoolExecutor() as pool:
                        pool.map(self.materialize, spans)

                def materialize(self, span):
                    with self._lock:
                        self.rows[span] = 1
            """, ["CONC001"])
        assert result.findings == []

    def test_transitive_callee_checked(self):
        result = lint("""
            from concurrent.futures import ThreadPoolExecutor

            class Collector:
                def run(self, spans):
                    with ThreadPoolExecutor() as pool:
                        pool.map(self.materialize, spans)

                def materialize(self, span):
                    self.finish(span)

                def finish(self, span):
                    self.done.append(span)
            """, ["CONC001"])
        assert [f.rule for f in result.findings] == ["CONC001"]
        assert "finish" in result.findings[0].message

    def test_local_state_is_fine(self):
        result = lint("""
            from concurrent.futures import ThreadPoolExecutor

            class Collector:
                def run(self, spans):
                    with ThreadPoolExecutor() as pool:
                        return list(pool.map(self.materialize, spans))

                def materialize(self, span):
                    rows = []
                    rows.append(span)
                    return rows
            """, ["CONC001"])
        assert result.findings == []

    def test_untreaded_mutation_is_fine(self):
        result = lint("""
            class Collector:
                def merge(self, span):
                    self.rows[span] = 1
            """, ["CONC001"])
        assert result.findings == []


class TestConc002LockRelease:
    def test_bare_acquire_fires(self):
        result = lint("""
            def grab(lock):
                lock.acquire()
                do_work()
                lock.release()
            """, ["CONC002"])
        assert [f.rule for f in result.findings] == ["CONC002"]
        assert "with" in result.findings[0].message

    def test_try_finally_release_ok(self):
        result = lint("""
            def grab(self):
                self._lock.acquire()
                try:
                    do_work()
                finally:
                    self._lock.release()
            """, ["CONC002"])
        assert result.findings == []

    def test_finally_on_different_lock_fires(self):
        result = lint("""
            def grab(self):
                self._lock.acquire()
                try:
                    do_work()
                finally:
                    self._other_lock.release()
            """, ["CONC002"])
        assert [f.rule for f in result.findings] == ["CONC002"]

    def test_with_statement_never_fires(self):
        result = lint("""
            def grab(self):
                with self._lock:
                    do_work()
            """, ["CONC002"])
        assert result.findings == []

    def test_non_lock_receiver_ignored(self):
        result = lint("""
            def grab(sem):
                sem.acquire()
            """, ["CONC002"])
        assert result.findings == []


class TestConc003GlobalGuard:
    def test_unguarded_watched_global_fires(self):
        result = lint("""
            CACHE = {}

            def remember(key, value):
                CACHE[key] = value
            """, ["CONC003"])
        assert [f.rule for f in result.findings] == ["CONC003"]
        assert "repro.core.snippet.CACHE" in result.findings[0].message

    def test_lock_guard_silences(self):
        result = lint("""
            import threading

            CACHE = {}
            _LOCK = threading.Lock()

            def remember(key, value):
                with _LOCK:
                    CACHE[key] = value
            """, ["CONC003"])
        assert result.findings == []

    def test_module_level_init_is_fine(self):
        result = lint("""
            CACHE = {}
            CACHE["seed"] = 1
            """, ["CONC003"])
        assert result.findings == []

    def test_class_attribute_store_fires(self):
        result = lint("""
            class Cache:
                _shared = None

                @classmethod
                def shared(cls):
                    if cls._shared is None:
                        cls._shared = cls()
                    return cls._shared
            """, ["CONC003"])
        assert [f.rule for f in result.findings] == ["CONC003"]
        assert "cls._shared" in result.findings[0].message

    def test_local_shadow_not_flagged(self):
        result = lint("""
            CACHE = {}

            def remember(key, value):
                CACHE = {}
                CACHE[key] = value
            """, ["CONC003"])
        assert result.findings == []

    def test_config_extra_globals(self):
        config = LintConfig(rule_options={
            "conc003": {"globals": ["repro.core.snippet.registry"]}})
        result = lint("""
            registry = {}

            def register(key, value):
                registry[key] = value
            """, ["CONC003"], config=config)
        assert [f.rule for f in result.findings] == ["CONC003"]


class TestFlow001LogThenApply:
    def test_ungated_apply_fires(self):
        result = lint("""
            class Collector:
                def collect(self):
                    self.store.table("sps").append_many(self.points)
            """, ["FLOW001"])
        assert [f.rule for f in result.findings] == ["FLOW001"]
        assert "log-then-apply" in result.findings[0].message

    def test_gated_apply_ok(self):
        result = lint("""
            class Collector:
                def collect(self):
                    self.engine.log_points("sps", self.points)
                    self.store.table("sps").append_many(self.points)
            """, ["FLOW001"])
        assert result.findings == []

    def test_apply_through_helper_checked(self):
        result = lint("""
            class Collector:
                def collect(self):
                    self._apply()

                def _apply(self):
                    self.store.table("sps").write(self.record)
            """, ["FLOW001"])
        assert [f.rule for f in result.findings] == ["FLOW001"]
        # the message reconstructs the path from the entry point
        assert "collect" in result.findings[0].message

    def test_unreachable_apply_not_checked(self):
        result = lint("""
            class Tool:
                def backfill(self):
                    self.store.table("sps").append_many(self.points)
            """, ["FLOW001"])
        assert result.findings == []

    def test_outside_configured_packages_not_checked(self):
        result = lint("""
            class Collector:
                def collect(self):
                    self.store.table("sps").append_many(self.points)
            """, ["FLOW001"], module="repro.storage.snippet",
            package="storage")
        assert result.findings == []

    def test_gate_after_apply_still_fires(self):
        result = lint("""
            class Collector:
                def collect(self):
                    self.store.table("sps").append_many(self.points)
                    self.engine.log_points("sps", self.points)
            """, ["FLOW001"])
        assert [f.rule for f in result.findings] == ["FLOW001"]
