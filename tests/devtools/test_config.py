"""Config loader: pyproject parsing, defaults, per-package tables."""

import textwrap

import pytest

from repro.devtools import ConfigError, LintConfig, config_from_table, load_config
from repro.devtools.config import (
    DEFAULT_CLOCKED_PACKAGES,
    DEFAULT_LAYERING_DAG,
    find_pyproject,
)


def write_pyproject(tmp_path, body):
    path = tmp_path / "pyproject.toml"
    path.write_text(textwrap.dedent(body), encoding="utf-8")
    return path


class TestLoadConfig:
    def test_missing_file_gives_defaults(self, tmp_path):
        config = load_config(tmp_path / "nope.toml")
        assert config.select is None
        assert config.clocked_packages == DEFAULT_CLOCKED_PACKAGES
        assert dict(config.layering_dag) == DEFAULT_LAYERING_DAG

    def test_missing_table_gives_defaults(self, tmp_path):
        path = write_pyproject(tmp_path, """
            [project]
            name = "something"
            """)
        config = load_config(path)
        assert config.select is None
        assert config.rule_enabled("QUO001", "core")
        # shipped default: multicloud adapters are the vendor surface
        assert not config.rule_enabled("QUO001", "multicloud")

    def test_full_table(self, tmp_path):
        path = write_pyproject(tmp_path, """
            [tool.spotlint]
            select = ["DET001", "LAY001"]

            [tool.spotlint.det001]
            packages = ["cloudsim"]

            [tool.spotlint.layering]
            shared = ["_util"]

            [tool.spotlint.layering.dag]
            cloudsim = []
            core = ["cloudsim"]

            [tool.spotlint.per-package]
            core = { disable = ["DET001"] }
            """)
        config = load_config(path)
        assert config.select == ("DET001", "LAY001")
        assert config.clocked_packages == ("cloudsim",)
        assert config.shared_modules == ("_util",)
        assert dict(config.layering_dag) == {"cloudsim": (),
                                             "core": ("cloudsim",)}
        assert config.rule_enabled("DET001", "cloudsim")
        assert not config.rule_enabled("DET001", "core")
        assert not config.rule_enabled("QUO001", "anywhere")  # not selected

    def test_malformed_select_raises(self, tmp_path):
        path = write_pyproject(tmp_path, """
            [tool.spotlint]
            select = 5
            """)
        with pytest.raises(ConfigError):
            load_config(path)

    def test_malformed_dag_raises(self):
        with pytest.raises(ConfigError):
            config_from_table({"layering": {"dag": {"core": "cloudsim"}}})

    def test_per_package_bare_list_form(self):
        config = config_from_table(
            {"per-package": {"apps": ["QUO001", "DET003"]}})
        assert config.disabled_for_package("apps") == {"QUO001", "DET003"}


class TestFindPyproject:
    def test_walks_up_from_nested_dir(self, tmp_path):
        path = write_pyproject(tmp_path, "[tool.spotlint]\n")
        nested = tmp_path / "src" / "repro"
        nested.mkdir(parents=True)
        assert find_pyproject(nested) == path

    def test_none_when_absent(self, tmp_path):
        deep = tmp_path / "a" / "b"
        deep.mkdir(parents=True)
        found = find_pyproject(deep)
        # may discover an unrelated pyproject above tmp_path, but never
        # one inside the empty tree
        assert found is None or tmp_path not in found.parents


class TestLintConfigApi:
    def test_rule_enabled_default_everything(self):
        config = LintConfig()
        assert config.rule_enabled("DET001", "cloudsim")
        assert config.rule_enabled("ANYTHING", "core")

    def test_select_narrows_globally(self):
        config = LintConfig(select=("DET002",))
        assert config.rule_enabled("DET002", "core")
        assert not config.rule_enabled("DET001", "core")
