"""Runtime determinism: two seeded collection rounds, identical bytes."""

from repro.devtools.doublerun import DoubleRunResult, double_run, snapshot_digests

TYPES = ("m5.large", "c5.xlarge")


class TestDoubleRun:
    def test_identical_archive_snapshots(self):
        result = double_run(seed=0, instance_types=TYPES, rounds=2)
        assert result.identical, result.summary()
        assert result.mismatched_tables == []
        # all three datasets were archived and compared
        assert set(result.digests_a) == {"sps", "advisor", "price"}
        assert result.digests_a == result.digests_b

    def test_snapshot_digests_stable_across_processes_shape(self):
        # same config -> same digests on every independent construction
        a = snapshot_digests(seed=3, instance_types=TYPES, rounds=1)
        b = snapshot_digests(seed=3, instance_types=TYPES, rounds=1)
        assert a == b

    def test_different_seed_changes_the_archive(self):
        a = snapshot_digests(seed=0, instance_types=TYPES, rounds=1)
        b = snapshot_digests(seed=1, instance_types=TYPES, rounds=1)
        assert a != b

    def test_serving_digest_opt_in_and_deterministic(self):
        # the serving battery (cache-cold / cache-hot / cache-off, all
        # byte-compared inside serving_digest) extends the contract
        a = snapshot_digests(seed=0, instance_types=TYPES, rounds=1,
                             include_serving=True)
        b = snapshot_digests(seed=0, instance_types=TYPES, rounds=1,
                             include_serving=True)
        assert "serving" in a
        assert a == b
        # and stays out of the default digest set
        assert "serving" not in snapshot_digests(seed=0,
                                                 instance_types=TYPES,
                                                 rounds=1)

    def test_mismatch_reporting(self):
        result = DoubleRunResult(identical=False,
                                 mismatched_tables=["sps"])
        assert "NONDETERMINISTIC" in result.summary()
        ok = DoubleRunResult(identical=True, digests_a={"sps": "x"},
                             digests_b={"sps": "x"})
        assert "deterministic" in ok.summary()
