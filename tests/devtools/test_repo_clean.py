"""Tier-1 gate: the shipped tree must be spotlint-clean.

This is the test the whole subsystem exists for -- any wall-clock leak,
unseeded draw, quota bypass or layering violation introduced by a future
PR fails the suite here, with the offending file:line in the report.
"""

from pathlib import Path

from repro.devtools import lint_paths, load_config, registered_codes
from repro.devtools.reporters import render_text

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src" / "repro"
PYPROJECT = REPO_ROOT / "pyproject.toml"


def test_src_tree_is_spotlint_clean():
    assert SRC.is_dir(), f"missing source tree {SRC}"
    result = lint_paths([SRC], load_config(PYPROJECT))
    assert result.files_checked > 50
    assert result.clean, "\n" + render_text(result)


def test_every_shipped_rule_ran():
    result = lint_paths([SRC / "cli.py"], load_config(PYPROJECT))
    assert set(result.rules_run) == set(registered_codes())
    assert len(result.rules_run) >= 6
    # the spotconc interprocedural rules patrol the whole tree
    for code in ("CONC001", "CONC002", "CONC003", "FLOW001"):
        assert code in result.rules_run


def test_layering_dag_matches_design_inventory():
    """The configured DAG covers exactly the packages on disk.

    DESIGN.md's system inventory lists the subpackages; a package added to
    the tree without a DAG entry would be flagged file-by-file by LAY001
    ("not declared"), and a stale DAG entry would silently allow imports
    from a package that no longer exists.
    """
    config = load_config(PYPROJECT)
    on_disk = {p.name for p in SRC.iterdir()
               if p.is_dir() and (p / "__init__.py").exists()}
    assert set(config.layering_dag) == on_disk
    # leaves substitute external systems and must import no repro package
    for leaf in ("cloudsim", "solver", "timeseries", "mlcore"):
        assert config.layering_dag[leaf] == ()
    # nothing may import devtools; devtools never appears as a dependency
    for pkg, allowed in config.layering_dag.items():
        assert "devtools" not in allowed


def test_suppressions_are_justified():
    """Every inline suppression in the tree carries a `--` reason."""
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            if "spotlint: disable=" not in line:
                continue
            stripped = line.lstrip()
            # trailing short-form markers may lean on a standalone block
            # directly above; standalone directives must carry the reason
            if stripped.startswith("#") and "--" not in line:
                offenders.append(f"{path}:{lineno}")
    assert not offenders, f"suppressions without a reason: {offenders}"
