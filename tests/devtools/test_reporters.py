"""Text and JSON reporters."""

import io
import json

from repro.devtools import lint_source, make_rules
from repro.devtools.reporters import render_json, render_text, write_report

DIRTY = "import random\nx = random.random()\n"
CLEAN = "x = 1\n"


def result_for(source):
    return lint_source(source, package="core", module="repro.core.x",
                       rules=make_rules(["DET002"]))


class TestTextReporter:
    def test_finding_line_format(self):
        text = render_text(result_for(DIRTY))
        assert "<string>:2:5 DET002" in text
        assert "1 finding(s)" in text

    def test_clean_summary(self):
        text = render_text(result_for(CLEAN))
        assert "spotlint: clean" in text

    def test_show_suppressed(self):
        source = "import random\nx = random.random()  " \
                 "# spotlint: disable=DET002 -- fixture\n"
        hidden = render_text(result_for(source))
        shown = render_text(result_for(source), show_suppressed=True)
        assert "[suppressed]" not in hidden
        assert "[suppressed]" in shown
        assert "1 suppressed" in shown


class TestTextReporterSeparation:
    def test_parse_errors_counted_separately(self):
        source = "def broken(:\n"
        result = lint_source(source, package="core", module="repro.core.x",
                             rules=make_rules(["DET002"]))
        text = render_text(result)
        assert "1 parse error(s)" in text
        assert "0 finding(s)" in text

    def test_rules_list_is_sorted(self):
        result = result_for(DIRTY)
        result.rules_run = ["QUO001", "DET002", "CLK001"]
        summary = render_text(result).splitlines()[-1]
        assert "rules: CLK001,DET002,QUO001" in summary


class TestJsonReporter:
    def test_round_trip_structure(self):
        payload = json.loads(render_json(result_for(DIRTY)))
        assert payload["schema_version"] == 2
        assert payload["summary"]["finding_count"] == 1
        assert payload["summary"]["parse_error_count"] == 0
        assert payload["summary"]["by_rule"] == {"DET002": 1}
        assert payload["summary"]["clean"] is False
        finding = payload["findings"][0]
        assert finding["rule"] == "DET002"
        assert finding["line"] == 2
        assert "rules_run" in payload and payload["files_checked"] == 1

    def test_write_report_dispatch(self):
        result = result_for(CLEAN)
        text_out, json_out = io.StringIO(), io.StringIO()
        write_report(result, text_out, fmt="text")
        write_report(result, json_out, fmt="json")
        assert "spotlint: clean" in text_out.getvalue()
        assert json.loads(json_out.getvalue())["summary"]["clean"] is True
