"""Fixture-snippet suite: one positive and one negative case per rule."""

import textwrap

from repro.devtools import LintConfig, lint_source, make_rules


def lint(source, package="", module=None, codes=None, config=None):
    """Lint a dedented snippet, returning the list of finding rule codes."""
    module = module or (f"repro.{package}.snippet" if package
                        else "repro.snippet")
    result = lint_source(textwrap.dedent(source), package=package,
                         module=module, config=config,
                         rules=make_rules(codes))
    assert not result.parse_errors
    return result


def codes_of(result):
    return [f.rule for f in result.findings]


class TestDET001WallClock:
    def test_positive_time_time_in_clocked_package(self):
        result = lint("""
            import time

            def stamp():
                return time.time()
            """, package="cloudsim", codes=["DET001"])
        assert codes_of(result) == ["DET001"]
        assert "simulation Clock" in result.findings[0].message

    def test_positive_datetime_now(self):
        result = lint("""
            from datetime import datetime

            def stamp():
                return datetime.now().timestamp()
            """, package="timeseries", codes=["DET001"])
        assert codes_of(result) == ["DET001"]

    def test_negative_sim_clock_and_conversions(self):
        result = lint("""
            from datetime import datetime, timezone

            def stamp(clock):
                now = clock.now()
                return datetime.fromtimestamp(now, tz=timezone.utc)
            """, package="cloudsim", codes=["DET001"])
        assert codes_of(result) == []

    def test_negative_outside_clocked_packages(self):
        result = lint("""
            import time

            def stamp():
                return time.time()
            """, package="analysis", codes=["DET001"])
        assert codes_of(result) == []


class TestDET002UnseededRandomness:
    def test_positive_global_prng_and_entropy(self):
        result = lint("""
            import os
            import random
            import uuid

            def draw():
                a = random.random()
                b = random.choice([1, 2])
                c = os.urandom(8)
                d = uuid.uuid4()
                return a, b, c, d
            """, codes=["DET002"])
        assert codes_of(result) == ["DET002"] * 4

    def test_positive_unseeded_constructors(self):
        result = lint("""
            import random
            import numpy as np

            def make():
                return random.Random(), np.random.default_rng()
            """, codes=["DET002"])
        assert codes_of(result) == ["DET002"] * 2

    def test_positive_numpy_module_level(self):
        result = lint("""
            import numpy as np

            def shuffle(xs):
                np.random.shuffle(xs)
            """, codes=["DET002"])
        assert codes_of(result) == ["DET002"]

    def test_negative_seeded_generators(self):
        result = lint("""
            import random
            import numpy as np
            from repro._util import stable_rng

            def make(seed):
                rng = np.random.default_rng(seed)
                other = random.Random(42)
                third = stable_rng("part", seed)
                return rng.choice([1, 2]), other.random(), third
            """, codes=["DET002"])
        assert codes_of(result) == []


class TestDET003OrderingHazards:
    def test_positive_set_iteration(self):
        result = lint("""
            def emit(items):
                out = []
                for name in set(items):
                    out.append(name)
                return out
            """, codes=["DET003"])
        assert codes_of(result) == ["DET003"]

    def test_positive_set_into_consumer_and_hash(self):
        result = lint("""
            def emit(xs):
                ordered = list(set(xs))
                key = hash("stable?")
                return ordered, key
            """, codes=["DET003"])
        assert sorted(codes_of(result)) == ["DET003", "DET003"]

    def test_positive_set_literal_comprehension(self):
        result = lint("""
            def emit(a, b):
                return [x for x in {a, b}]
            """, codes=["DET003"])
        assert codes_of(result) == ["DET003"]

    def test_negative_sorted_and_membership(self):
        result = lint("""
            import hashlib

            def emit(items, seen):
                out = [x for x in sorted(set(items)) if x not in seen]
                digest = hashlib.blake2b(b"x").hexdigest()
                for name in sorted({"b", "a"}):
                    out.append(name)
                return out, digest
            """, codes=["DET003"])
        assert codes_of(result) == []


class TestQUO001QuotaBypass:
    def test_positive_engine_access(self):
        result = lint("""
            def probe(cloud, itype, region, zone, ts):
                sps = cloud.placement.zone_score(itype, region, zone, ts)
                price = cloud.pricing.spot_price(itype, region, ts, zone)
                return sps, price
            """, package="core", codes=["QUO001"])
        assert codes_of(result) == ["QUO001"] * 2

    def test_positive_self_cloud_and_construction(self):
        result = lint("""
            from repro.cloudsim import PricingEngine

            class Probe:
                def peek(self, itype, region, ts):
                    engine = PricingEngine(self.cloud.market)
                    return self.cloud.advisor.interruption_ratio(
                        itype, region, ts)
            """, package="experiments", codes=["QUO001"])
        # market access, engine construction, advisor access
        assert codes_of(result) == ["QUO001"] * 3

    def test_negative_client_surface_and_unrelated_attrs(self):
        result = lint("""
            class Collector:
                def collect(self, client, record):
                    rows = client.get_spot_placement_scores(
                        ["m5.large"], ["us-east-1"])
                    self.advisor.write(record)  # archive table, not engine
                    return rows
            """, package="core", codes=["QUO001"])
        assert codes_of(result) == []

    def test_negative_inside_cloudsim(self):
        result = lint("""
            def internal(cloud, ts):
                return cloud.placement.score_query([], [], ts)
            """, package="cloudsim", codes=["QUO001"])
        assert codes_of(result) == []


class TestLAY001Layering:
    def test_positive_leaf_imports_upward(self):
        result = lint("""
            from repro.core.archive import SpotLakeArchive
            """, package="timeseries", module="repro.timeseries.snippet",
            codes=["LAY001"])
        assert codes_of(result) == ["LAY001"]
        assert "'timeseries' may not import from 'core'" \
            in result.findings[0].message

    def test_positive_relative_upward_import(self):
        result = lint("""
            from ..analysis.scores import interruption_free_score
            """, package="cloudsim", module="repro.cloudsim.snippet",
            codes=["LAY001"])
        assert codes_of(result) == ["LAY001"]

    def test_positive_root_package_import(self):
        result = lint("""
            from repro import SpotLakeService
            """, package="apps", module="repro.apps.snippet",
            codes=["LAY001"])
        assert codes_of(result) == ["LAY001"]
        assert "repro root" in result.findings[0].message

    def test_positive_undeclared_package(self):
        result = lint("""
            import json
            """, package="newpkg", module="repro.newpkg.snippet",
            codes=["LAY001"])
        assert codes_of(result) == ["LAY001"]
        assert "not declared" in result.findings[0].message

    def test_negative_allowed_imports(self):
        result = lint("""
            import numpy as np
            from repro.cloudsim import SimulatedCloud
            from ..timeseries import Record
            from .._util import stable_hash
            from ..scoring import categorize
            from .archive import SpotLakeArchive
            """, package="core", module="repro.core.snippet",
            codes=["LAY001"])
        assert codes_of(result) == []

    def test_negative_package_init_relative_import(self):
        # ``from .record import X`` inside repro/timeseries/__init__.py
        result = lint("""
            from .record import Record
            from .._util import stable_hash
            """, package="timeseries",
            module="repro.timeseries.__init__", codes=["LAY001"])
        assert codes_of(result) == []


class TestCLK001ClockFlow:
    def test_positive_wall_clock_timestamp(self):
        result = lint("""
            import time

            def archive_now(archive):
                archive.put_price("m5.large", "us-east-1", "use1-az1",
                                  1.0, time.time())
            """, package="apps", codes=["CLK001"])
        assert codes_of(result) == ["CLK001"]
        assert "put_price" in result.findings[0].message

    def test_positive_nested_in_record_write(self):
        result = lint("""
            from datetime import datetime

            def bad(table, Record, dims):
                table.write(Record.make(dims, "sps", 3.0,
                                        datetime.utcnow().timestamp()))
            """, package="core", codes=["CLK001"])
        assert codes_of(result) == ["CLK001"]

    def test_negative_sim_clock_timestamp(self):
        result = lint("""
            def good(archive, clock):
                now = clock.now()
                archive.put_price("m5.large", "us-east-1", "use1-az1",
                                  1.0, now)
            """, package="core", codes=["CLK001"])
        assert codes_of(result) == []

    def test_negative_file_write_is_not_a_table(self):
        result = lint("""
            import time

            def log_line(fh):
                fh.write(f"{time.time()}\\n")
            """, package="analysis", codes=["CLK001"])
        assert codes_of(result) == []


class TestFrameworkPlumbing:
    def test_at_least_six_rules_registered(self):
        from repro.devtools import registered_codes
        codes = registered_codes()
        assert len(codes) >= 6
        for expected in ("DET001", "DET002", "DET003", "QUO001",
                         "LAY001", "CLK001"):
            assert expected in codes

    def test_unknown_rule_code_raises(self):
        import pytest
        with pytest.raises(KeyError):
            make_rules(["NOPE99"])

    def test_parse_error_reported_not_raised(self):
        result = lint_source("def broken(:\n", path="bad.py")
        assert result.parse_errors
        assert not result.clean

    def test_per_package_disable(self):
        config = LintConfig(per_package_disable={"multicloud": ("QUO001",)})
        src = "def f(cloud, t):\n    return cloud.pricing.spot_price(t)\n"
        flagged = lint_source(src, package="apps",
                              module="repro.apps.x", config=config,
                              rules=make_rules(["QUO001"]))
        silenced = lint_source(src, package="multicloud",
                               module="repro.multicloud.x", config=config,
                               rules=make_rules(["QUO001"]))
        assert [f.rule for f in flagged.findings] == ["QUO001"]
        assert silenced.findings == []
