"""The runtime concurrency sanitizer: proxies, cycles, write tracking."""

import threading

import pytest

from repro.core.metrics import MetricsRegistry
from repro.core.plan_cache import PlanCache
from repro.devtools.sanitizer import (
    ConcurrencySanitizer,
    TrackedLock,
    run_sanitized_probe,
)


def run_thread(fn):
    thread = threading.Thread(target=fn)
    thread.start()
    thread.join()


class TestInstallation:
    def test_factories_proxied_and_restored(self):
        real = threading.Lock
        with ConcurrencySanitizer():
            assert isinstance(threading.Lock(), TrackedLock)
            assert isinstance(threading.RLock(), TrackedLock)
        assert threading.Lock is real
        assert not isinstance(threading.Lock(), TrackedLock)

    def test_uninstall_restores_setattr(self):
        with ConcurrencySanitizer():
            assert "__setattr__" in vars(MetricsRegistry)
        assert "__setattr__" not in vars(MetricsRegistry)

    def test_leftover_tracked_lock_still_works_after_uninstall(self):
        with ConcurrencySanitizer():
            lock = threading.Lock()
        with lock:  # proxy outlives the session; must stay functional
            assert lock.locked()

    def test_condition_over_tracked_rlock(self):
        # concurrent.futures builds Conditions over default RLocks; the
        # proxy must preserve ownership semantics or notify() breaks
        with ConcurrencySanitizer():
            cond = threading.Condition()
            with cond:
                cond.notify_all()


class TestLockOrderCycles:
    def test_inverted_pair_reported(self):
        san = ConcurrencySanitizer()
        with san:
            a, b = threading.Lock(), threading.Lock()

            def forward():
                with a:
                    with b:
                        pass

            def backward():
                with b:
                    with a:
                        pass

            run_thread(forward)
            run_thread(backward)
        result = san.result()
        assert [f.rule for f in result.findings] == ["SAN001"]
        assert "lock-order cycle" in result.findings[0].message

    def test_consistent_order_clean(self):
        san = ConcurrencySanitizer()
        with san:
            a, b = threading.Lock(), threading.Lock()

            def forward():
                with a:
                    with b:
                        pass

            run_thread(forward)
            run_thread(forward)
        assert san.result().clean

    def test_reentrant_acquire_not_a_cycle(self):
        san = ConcurrencySanitizer()
        with san:
            lock = threading.RLock()
            with lock:
                with lock:
                    pass
        assert san.result().clean

    def test_three_lock_cycle(self):
        san = ConcurrencySanitizer()
        with san:
            locks = [threading.Lock() for _ in range(3)]

            def chain(first, second):
                def body():
                    with locks[first]:
                        with locks[second]:
                            pass
                return body

            run_thread(chain(0, 1))
            run_thread(chain(1, 2))
            run_thread(chain(2, 0))
        findings = san.result().findings
        assert [f.rule for f in findings] == ["SAN001"]


class TestSharedWrites:
    def test_off_owner_unguarded_write_reported(self):
        san = ConcurrencySanitizer()
        with san:
            registry = MetricsRegistry()
            run_thread(lambda: setattr(registry, "_timer", None))
        findings = san.result().findings
        assert [f.rule for f in findings] == ["SAN002"]
        assert "MetricsRegistry#1._timer" in findings[0].message

    def test_off_owner_write_under_tracked_lock_ok(self):
        san = ConcurrencySanitizer()
        with san:
            registry = MetricsRegistry()
            guard = threading.Lock()

            def locked_write():
                with guard:
                    registry._timer = None

            run_thread(locked_write)
        assert san.result().clean

    def test_owner_thread_writes_freely(self):
        san = ConcurrencySanitizer()
        with san:
            registry = MetricsRegistry()
            registry._timer = None
        assert san.result().clean

    def test_duplicate_violations_deduplicated(self):
        san = ConcurrencySanitizer()
        with san:
            registry = MetricsRegistry()

            def hammer():
                registry._timer = None

            run_thread(hammer)
            run_thread(hammer)
        assert len(san.result().findings) == 1

    def test_plan_cache_is_tracked(self):
        PlanCache.reset_shared()
        san = ConcurrencySanitizer()
        with san:
            cache = PlanCache()
            run_thread(lambda: setattr(cache, "hits", 99))
        PlanCache.reset_shared()
        findings = san.result().findings
        assert [f.rule for f in findings] == ["SAN002"]
        assert "PlanCache#1.hits" in findings[0].message


class TestProbe:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_parallel_collection_is_sanitizer_clean(self, workers):
        result = run_sanitized_probe(workers=workers, rounds=2)
        assert result.clean, "\n".join(
            f"{f.rule} {f.message}" for f in result.findings)

    def test_probe_reports_sanitizer_codes(self):
        result = run_sanitized_probe(workers=2, rounds=1)
        assert result.rules_run == ["SAN001", "SAN002"]
