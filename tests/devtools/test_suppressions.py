"""Inline suppression comments: trailing, standalone, comment blocks."""

import textwrap

from repro.devtools import lint_source, make_rules
from repro.devtools.suppressions import parse_directive, suppression_map


def lint(source, codes):
    return lint_source(textwrap.dedent(source), package="apps",
                       module="repro.apps.snippet", rules=make_rules(codes))


class TestParseDirective:
    def test_single_code(self):
        assert parse_directive("x = 1  # spotlint: disable=DET003") == \
            {"DET003"}

    def test_multiple_codes_and_reason(self):
        line = "# spotlint: disable=DET003, QUO001 -- justified because"
        assert parse_directive(line) == {"DET003", "QUO001"}

    def test_no_directive(self):
        assert parse_directive("x = hash(y)  # ordinary comment") == \
            frozenset()


class TestSuppressionMap:
    def test_trailing_covers_own_line_only(self):
        lines = ["a = 1", "b = hash(a)  # spotlint: disable=DET003", "c = 2"]
        smap = suppression_map(lines)
        assert "DET003" in smap[2]
        assert 1 not in smap and 3 not in smap

    def test_standalone_covers_next_code_line(self):
        lines = ["# spotlint: disable=QUO001 -- reason", "x = probe()"]
        smap = suppression_map(lines)
        assert "QUO001" in smap[1] and "QUO001" in smap[2]

    def test_standalone_skips_continuation_comments(self):
        lines = ["# spotlint: disable=QUO001 -- a long reason that",
                 "# continues on a second comment line",
                 "x = probe()",
                 "y = probe()"]
        smap = suppression_map(lines)
        assert "QUO001" in smap[3]
        assert 4 not in smap


class TestEngineIntegration:
    SRC = """
        def emit(xs):
            return list(set(xs))  # spotlint: disable=DET003 -- test double
        """

    def test_suppressed_finding_moves_to_suppressed_list(self):
        result = lint(self.SRC, ["DET003"])
        assert result.findings == []
        assert [f.rule for f in result.suppressed] == ["DET003"]
        assert result.clean

    def test_other_rules_not_covered_by_directive(self):
        result = lint("""
            import random

            def emit(xs):
                # spotlint: disable=DET003 -- wrong code on purpose
                return sorted(set(xs), key=lambda _: random.random())
            """, ["DET002", "DET003"])
        assert [f.rule for f in result.findings] == ["DET002"]

    def test_standalone_block_suppression(self):
        result = lint("""
            def probe(cloud, t):
                # spotlint: disable=QUO001 -- vendor surface by design,
                # continued reason line
                return cloud.pricing.spot_price(t)
            """, ["QUO001"])
        assert result.findings == []
        assert [f.rule for f in result.suppressed] == ["QUO001"]


class TestMultiCodeAndUnknown:
    def test_one_comment_suppresses_multiple_codes(self):
        result = lint("""
            import random

            def emit(xs):
                # spotlint: disable=DET002, DET003 -- fixture needs both
                return list(set(xs)) + [random.random()]
            """, ["DET002", "DET003"])
        assert result.findings == []
        assert sorted(f.rule for f in result.suppressed) == \
            ["DET002", "DET003"]

    def test_unknown_code_in_directive_blocks(self):
        result = lint("""
            def emit(xs):
                return list(set(xs))  # spotlint: disable=DET999 -- typo
            """, ["DET003"])
        rules = [f.rule for f in result.findings]
        # the typo'd directive suppresses nothing AND is itself flagged
        assert "SUPP" in rules and "DET003" in rules
        supp = next(f for f in result.findings if f.rule == "SUPP")
        assert "DET999" in supp.message
        assert not result.clean

    def test_engine_codes_allowed_in_directives(self):
        result = lint("""
            x = 1  # spotlint: disable=SUPP -- migrating a renamed rule
            """, ["DET003"])
        assert [f.rule for f in result.findings] == []

    def test_mixed_known_unknown_flags_only_unknown(self):
        result = lint("""
            def emit(xs):
                return list(set(xs))  # spotlint: disable=DET003, NOPE1 -- x
            """, ["DET003"])
        assert [f.rule for f in result.findings] == ["SUPP"]
        assert "NOPE1" in result.findings[0].message
        assert [f.rule for f in result.suppressed] == ["DET003"]


class TestConcFlowSuppression:
    def test_conc003_suppressible_with_reason(self):
        result = lint_source(textwrap.dedent("""
            REGISTRY = {}

            def register(key, value):
                REGISTRY[key] = value  # spotlint: disable=CONC003 -- import-time only
            """), module="repro.core.snippet", package="core",
            rules=make_rules(["CONC003"]))
        assert result.findings == []
        assert [f.rule for f in result.suppressed] == ["CONC003"]

    def test_flow001_suppressible_with_reason(self):
        result = lint_source(textwrap.dedent("""
            class Collector:
                def collect(self):
                    # spotlint: disable=FLOW001 -- replay path, WAL upstream
                    self.store.table("sps").append_many(self.points)
            """), module="repro.core.snippet", package="core",
            rules=make_rules(["FLOW001"]))
        assert result.findings == []
        assert [f.rule for f in result.suppressed] == ["FLOW001"]
