"""Inline suppression comments: trailing, standalone, comment blocks."""

import textwrap

from repro.devtools import lint_source, make_rules
from repro.devtools.suppressions import parse_directive, suppression_map


def lint(source, codes):
    return lint_source(textwrap.dedent(source), package="apps",
                       module="repro.apps.snippet", rules=make_rules(codes))


class TestParseDirective:
    def test_single_code(self):
        assert parse_directive("x = 1  # spotlint: disable=DET003") == \
            {"DET003"}

    def test_multiple_codes_and_reason(self):
        line = "# spotlint: disable=DET003, QUO001 -- justified because"
        assert parse_directive(line) == {"DET003", "QUO001"}

    def test_no_directive(self):
        assert parse_directive("x = hash(y)  # ordinary comment") == \
            frozenset()


class TestSuppressionMap:
    def test_trailing_covers_own_line_only(self):
        lines = ["a = 1", "b = hash(a)  # spotlint: disable=DET003", "c = 2"]
        smap = suppression_map(lines)
        assert "DET003" in smap[2]
        assert 1 not in smap and 3 not in smap

    def test_standalone_covers_next_code_line(self):
        lines = ["# spotlint: disable=QUO001 -- reason", "x = probe()"]
        smap = suppression_map(lines)
        assert "QUO001" in smap[1] and "QUO001" in smap[2]

    def test_standalone_skips_continuation_comments(self):
        lines = ["# spotlint: disable=QUO001 -- a long reason that",
                 "# continues on a second comment line",
                 "x = probe()",
                 "y = probe()"]
        smap = suppression_map(lines)
        assert "QUO001" in smap[3]
        assert 4 not in smap


class TestEngineIntegration:
    SRC = """
        def emit(xs):
            return list(set(xs))  # spotlint: disable=DET003 -- test double
        """

    def test_suppressed_finding_moves_to_suppressed_list(self):
        result = lint(self.SRC, ["DET003"])
        assert result.findings == []
        assert [f.rule for f in result.suppressed] == ["DET003"]
        assert result.clean

    def test_other_rules_not_covered_by_directive(self):
        result = lint("""
            import random

            def emit(xs):
                # spotlint: disable=DET003 -- wrong code on purpose
                return sorted(set(xs), key=lambda _: random.random())
            """, ["DET002", "DET003"])
        assert [f.rule for f in result.findings] == ["DET002"]

    def test_standalone_block_suppression(self):
        result = lint("""
            def probe(cloud, t):
                # spotlint: disable=QUO001 -- vendor surface by design,
                # continued reason line
                return cloud.pricing.spot_price(t)
            """, ["QUO001"])
        assert result.findings == []
        assert [f.rule for f in result.suppressed] == ["QUO001"]
