"""Experiment-test fixtures: a moderate stratified case set with results."""

import pytest

from repro import SimulatedCloud
from repro.experiments import ExperimentRunner, sample_cases


@pytest.fixture(scope="package")
def experiment():
    cloud = SimulatedCloud(seed=0)
    submit = cloud.clock.start + 35 * 86400.0
    cloud.clock.set(submit)
    cases = sample_cases(cloud, submit, per_combo=40)
    results = ExperimentRunner(cloud).run_all(cases)
    return cloud, submit, cases, results
