"""Tests for score categorization and candidate scanning."""

from repro.experiments import COMBOS, Candidate, combo_counts, scan_candidates


class TestCandidate:
    def test_combo_labels(self):
        assert Candidate("a", "r", "ra", 3, 3.0).combo == "H-H"
        assert Candidate("a", "r", "ra", 3, 1.0).combo == "H-L"
        assert Candidate("a", "r", "ra", 2, 2.0).combo == "M-M"
        assert Candidate("a", "r", "ra", 1, 3.0).combo == "L-H"
        assert Candidate("a", "r", "ra", 1, 1.0).combo == "L-L"

    def test_non_experiment_combos_excluded(self):
        assert Candidate("a", "r", "ra", 3, 2.0).combo is None  # H-M unused
        assert Candidate("a", "r", "ra", 2, 2.5).combo is None  # 2.5 excluded
        assert Candidate("a", "r", "ra", 2, 3.0).combo is None  # M-H unused


class TestScanCandidates:
    def test_candidates_have_valid_combos(self, cloud):
        candidates = scan_candidates(cloud, cloud.clock.start, max_pools=2000)
        assert candidates
        assert all(c.combo in COMBOS for c in candidates)

    def test_scores_consistent_with_engines(self, cloud):
        from repro.analysis.scores import interruption_free_score
        t = cloud.clock.start
        for c in scan_candidates(cloud, t, max_pools=500)[:20]:
            assert c.sps_score == cloud.placement.zone_score(
                c.instance_type, c.region, c.availability_zone, t)
            ratio = cloud.advisor.interruption_ratio(c.instance_type, c.region, t)
            assert c.if_score == interruption_free_score(ratio)

    def test_combo_counts_shape(self, cloud):
        candidates = scan_candidates(cloud, cloud.clock.start, max_pools=4000)
        counts = combo_counts(candidates)
        assert set(counts) == set(COMBOS)
        assert sum(counts.values()) == len(candidates)

    def test_lh_is_scarce(self, cloud):
        """The paper found L-H the scarcest combination; so does the
        simulated market (full-scan counts)."""
        candidates = scan_candidates(cloud, cloud.clock.start + 35 * 86400.0)
        counts = combo_counts(candidates)
        nonzero = {c: n for c, n in counts.items() if n}
        assert min(nonzero, key=nonzero.get) == "L-H"
