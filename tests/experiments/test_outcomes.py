"""Tests for Table 3 / Figure 11 outcome aggregation."""

import math

import numpy as np

from repro.experiments import (
    COMBOS,
    fulfillment_latency_cdfs,
    run_duration_cdfs,
    table3,
)


class TestTable3:
    def test_rows_in_paper_order(self, experiment):
        _, _, _, results = experiment
        rows = table3(results)
        order = [r.combo for r in rows]
        assert order == [c for c in COMBOS if c in order]

    def test_percentages_bounded(self, experiment):
        _, _, _, results = experiment
        for row in table3(results):
            assert 0.0 <= row.not_fulfilled_percent <= 100.0
            assert 0.0 <= row.interrupted_percent <= 100.0
            assert row.cases > 0

    def test_high_sps_rows_fully_fulfilled(self, experiment):
        _, _, _, results = experiment
        by_combo = {r.combo: r for r in table3(results)}
        assert by_combo["H-H"].not_fulfilled_percent == 0.0
        assert by_combo["H-L"].not_fulfilled_percent == 0.0

    def test_hh_least_interrupted(self, experiment):
        _, _, _, results = experiment
        rows = table3(results)
        by_combo = {r.combo: r for r in rows}
        assert by_combo["H-H"].interrupted_percent == min(
            r.interrupted_percent for r in rows)


class TestLatencyCdfs:
    def test_cdf_monotone(self, experiment):
        _, _, _, results = experiment
        cdfs = fulfillment_latency_cdfs(results)
        for combo, (xs, fs) in cdfs.series.items():
            if len(xs):
                assert np.all(np.diff(xs) >= 0)
                assert np.all(np.diff(fs) >= 0)
                assert fs[-1] == 1.0

    def test_high_fulfills_faster_than_low(self, experiment):
        _, _, _, results = experiment
        cdfs = fulfillment_latency_cdfs(results)
        assert cdfs.median("H-H") < cdfs.median("L-L")

    def test_fraction_below(self, experiment):
        _, _, _, results = experiment
        cdfs = fulfillment_latency_cdfs(results)
        assert 0.0 <= cdfs.fraction_below("H-H", 135.0) <= 1.0
        assert cdfs.fraction_below("H-H", 1e12) == 1.0

    def test_missing_combo_nan(self, experiment):
        _, _, _, results = experiment
        cdfs = fulfillment_latency_cdfs([])
        assert math.isnan(cdfs.median("H-H"))
        assert math.isnan(cdfs.fraction_below("H-H", 10.0))


class TestRunDurationCdfs:
    def test_only_interrupted_cases_counted(self, experiment):
        _, _, _, results = experiment
        cdfs = run_duration_cdfs(results)
        expected = sum(1 for r in results
                       if r.combo == "H-H" and r.first_run_duration is not None)
        xs, _ = cdfs.series["H-H"]
        assert len(xs) == expected

    def test_hh_runs_longest(self, experiment):
        _, _, _, results = experiment
        cdfs = run_duration_cdfs(results)
        medians = {c: cdfs.median(c) for c in COMBOS
                   if not math.isnan(cdfs.median(c))}
        assert max(medians, key=medians.get) == "H-H"
