"""Tests for the Table 4 prediction study."""

import numpy as np
import pytest

from repro import ServiceConfig, SpotLakeService
from repro.experiments import (
    CLASSES,
    CLASS_INDEX,
    FEATURE_NAMES,
    build_dataset,
    case_features,
    cost_save_heuristic,
    if_heuristic,
    prediction_study,
    sps_heuristic,
)


@pytest.fixture(scope="module")
def prediction_setup(experiment):
    cloud, submit, cases, results = experiment
    service = SpotLakeService(ServiceConfig(seed=0), cloud=cloud)
    pools = sorted({(c.instance_type, c.region, c.availability_zone)
                    for c in cases})
    times = np.linspace(submit - 32 * 86400.0, submit, 60)
    service.bulk_backfill(times.tolist(), pools=pools, include_price=False)
    return service.archive, submit, results


class TestHeuristics:
    def test_sps_heuristic_mapping(self):
        preds = sps_heuristic(np.array([3.0, 2.0, 1.0]))
        assert list(preds) == [CLASS_INDEX["NoInterrupt"],
                               CLASS_INDEX["Interrupted"],
                               CLASS_INDEX["NoFulfill"]]

    def test_if_heuristic_mapping(self):
        preds = if_heuristic(np.array([3.0, 2.5, 2.0, 1.5, 1.0]))
        assert list(preds) == [CLASS_INDEX["NoInterrupt"],
                               CLASS_INDEX["NoInterrupt"],
                               CLASS_INDEX["Interrupted"],
                               CLASS_INDEX["Interrupted"],
                               CLASS_INDEX["NoFulfill"]]

    def test_cost_save_heuristic_buckets(self):
        preds = cost_save_heuristic(np.array([50.0, 68.0, 80.0]))
        assert len(set(preds)) == 3


class TestFeatures:
    def test_feature_vector_shape(self, prediction_setup):
        archive, submit, results = prediction_setup
        features = case_features(archive, results[0], submit)
        assert features.shape == (len(FEATURE_NAMES),)
        assert not np.any(np.isnan(features))

    def test_current_features_match_candidate(self, prediction_setup):
        archive, submit, results = prediction_setup
        sps_col = FEATURE_NAMES.index("sps_current")
        if_col = FEATURE_NAMES.index("if_current")
        for result in results[:10]:
            features = case_features(archive, result, submit)
            assert features[sps_col] == result.candidate.sps_score
            assert features[if_col] == result.candidate.if_score

    def test_dataset_labels(self, prediction_setup):
        archive, submit, results = prediction_setup
        X, y = build_dataset(archive, results, submit)
        assert X.shape == (len(results), len(FEATURE_NAMES))
        assert set(np.unique(y)) <= set(range(len(CLASSES)))


class TestStudy:
    def test_four_methods(self, prediction_setup):
        archive, submit, results = prediction_setup
        scores = prediction_study(archive, results, submit, n_estimators=30)
        assert [s.method for s in scores] == ["IF", "SPS", "CostSave", "RF"]
        for score in scores:
            assert 0.0 <= score.accuracy <= 1.0
            assert 0.0 <= score.f1 <= 1.0

    def test_rf_beats_all_heuristics(self, prediction_setup):
        """The paper's Table 4 headline."""
        archive, submit, results = prediction_setup
        scores = {s.method: s for s in
                  prediction_study(archive, results, submit,
                                   n_estimators=60, seed=0)}
        assert scores["RF"].accuracy > scores["IF"].accuracy
        assert scores["RF"].accuracy > scores["CostSave"].accuracy
        # at this reduced case count the RF-vs-SPS gap can narrow; the
        # full-scale comparison is asserted in benchmarks/bench_table04.py
        assert scores["RF"].accuracy >= scores["SPS"].accuracy - 0.05

    def test_feature_mask(self, prediction_setup):
        archive, submit, results = prediction_setup
        scores = prediction_study(archive, results, submit, n_estimators=20,
                                  feature_mask=[0, 5])
        assert scores[-1].method == "RF"
