"""Tests for the 24-hour persistent-request experiment runner."""

import pytest

from repro import SimulatedCloud
from repro.experiments import ExperimentRunner, sample_cases
from repro.experiments.runner import EXPERIMENT_HORIZON_HOURS


class TestRunner:
    def test_result_fields(self, experiment):
        _, _, cases, results = experiment
        assert len(results) == len(cases)
        for result in results[:30]:
            assert result.combo == result.candidate.combo
            if result.fulfilled:
                assert result.fulfillment_latency is not None
                assert result.fulfillment_latency >= 0
            else:
                assert not result.interrupted
                assert result.fulfillment_latency is None

    def test_outcome_labels(self, experiment):
        _, _, _, results = experiment
        labels = {r.outcome_label for r in results}
        assert labels <= {"NoInterrupt", "Interrupted", "NoFulfill"}
        assert len(labels) == 3  # a balanced design produces all three

    def test_high_sps_always_fulfilled(self, experiment):
        _, _, _, results = experiment
        for result in results:
            if result.candidate.sps_score == 3:
                assert result.fulfilled

    def test_run_duration_consistency(self, experiment):
        _, _, _, results = experiment
        for result in results:
            if result.first_run_duration is not None:
                assert result.interrupted
                assert result.first_run_duration > 0
                assert result.first_run_duration <= \
                    EXPERIMENT_HORIZON_HOURS * 3600.0

    def test_bid_is_on_demand_price(self, experiment):
        cloud, _, _, results = experiment
        result = results[0]
        request = cloud.get_request(result.request_id)
        itype = cloud.catalog.instance_type(result.candidate.instance_type)
        assert request.bid_price == itype.on_demand_price
        assert request.persistent

    def test_coarse_and_literal_polling_agree(self):
        """The trace-based fast path and the literal 5 s polling loop see
        the same fulfillments and interruptions of one request, within one
        poll step of rounding."""
        cloud = SimulatedCloud(seed=0)
        submit = cloud.clock.start + 35 * 86400.0
        cloud.clock.set(submit)
        cases = sample_cases(cloud, submit, per_combo=4)
        runner = ExperimentRunner(cloud, poll_interval=5.0)
        for case in cases[:8]:
            result = runner.run_case(case)
            request = cloud.get_request(result.request_id)
            fulfills, interrupts, _ = runner._poll(result.request_id,
                                                   request.created_at)
            true_fulfills = [t for t in request.fulfillment_times()
                             if t <= request.created_at + runner.horizon]
            # polling can miss a cycle shorter than one poll interval, but
            # never invents one; what it sees aligns within one step
            assert len(fulfills) <= len(true_fulfills)
            assert bool(fulfills) == bool(true_fulfills)
            if fulfills:
                assert any(0 <= fulfills[0] - t <= 5.0 for t in true_fulfills)
            true_interrupts = [t for t in request.interruption_times()
                               if t <= request.created_at + runner.horizon]
            assert len(interrupts) <= len(true_interrupts)
