"""Tests for experiment case sampling."""

from collections import Counter

from repro.experiments import sample_cases
from repro.experiments.sampler import prefer_cheap


class TestSampleCases:
    def test_balanced_strata(self, cloud):
        t = cloud.clock.start + 35 * 86400.0
        cases = sample_cases(cloud, t, per_combo=30)
        counts = Counter(c.combo for c in cases)
        assert all(n <= 30 for n in counts.values())
        assert counts["H-H"] == 30  # abundant combos hit the target

    def test_default_target_is_scarcest(self, cloud):
        t = cloud.clock.start + 35 * 86400.0
        cases = sample_cases(cloud, t, max_pools=6000)
        counts = Counter(c.combo for c in cases)
        if len(counts) > 1:
            assert max(counts.values()) <= min(counts.values()) * 2

    def test_deterministic(self, cloud):
        t = cloud.clock.start + 35 * 86400.0
        a = sample_cases(cloud, t, per_combo=10, seed=4)
        b = sample_cases(cloud, t, per_combo=10, seed=4)
        assert a == b

    def test_spread_over_types(self, cloud):
        """The sampler round-robins over instance types, so a stratum draws
        from many distinct types rather than a popular few."""
        t = cloud.clock.start + 35 * 86400.0
        cases = sample_cases(cloud, t, per_combo=40)
        from repro.experiments import scan_candidates
        candidates = scan_candidates(cloud, t)
        for combo in ("H-H", "H-L"):
            picked_types = {c.instance_type for c in cases if c.combo == combo}
            available_types = {c.instance_type for c in candidates
                               if c.combo == combo}
            assert len(picked_types) >= min(len(available_types), 30)

    def test_empty_scan(self, cloud):
        assert sample_cases(cloud, cloud.clock.start, max_pools=0) == []


class TestPreferCheap:
    def test_small_sizes_first(self, cloud):
        from repro.experiments import scan_candidates
        t = cloud.clock.start + 35 * 86400.0
        candidates = scan_candidates(cloud, t, max_pools=3000)
        ordered = prefer_cheap(cloud.catalog, candidates)
        ranks = [cloud.catalog.instance_type(c.instance_type).size_rank
                 for c in ordered]
        assert ranks == sorted(ranks)
