"""End-to-end integration: the full Figure-2 pipeline on a catalog slice.

Collect through the quota-limited API -> archive -> serve -> analyze ->
experiment -> predict, all against one shared world.
"""

import numpy as np
import pytest

from repro import ServiceConfig, SpotLakeService
from repro.analysis import update_frequency_study, value_distribution
from repro.experiments import (
    ExperimentRunner,
    prediction_study,
    sample_cases,
    table3,
)

TYPES = [
    "m5.large", "m5.xlarge", "t3.micro", "c5.large", "c5.xlarge",
    "r5.large", "p3.2xlarge", "g4dn.xlarge", "inf1.xlarge",
    "i3.large", "d2.xlarge",
]


@pytest.fixture(scope="module")
def pipeline():
    """Run 12 hours of 30-minute collection rounds."""
    service = SpotLakeService(ServiceConfig(
        seed=0, instance_types=TYPES, collection_interval=1800.0))
    service.run_collection(12 * 3600.0)
    return service


class TestCollectionToArchive:
    def test_all_rounds_ran(self, pipeline):
        jobs = {j.name: j for j in pipeline.scheduler.jobs()}
        assert jobs["sps"].runs == 25  # t=0 plus 24 half-hour rounds
        assert jobs["advisor"].runs == 25
        assert jobs["price"].runs == 25

    def test_no_quota_failures(self, pipeline):
        assert pipeline.scheduler.jobs()[0].last_report.queries_failed == 0

    def test_archive_dedup_effective(self, pipeline):
        stats = pipeline.archive.stats()
        assert stats["sps"]["dedup_ratio"] < 0.2  # 30-min cadence repeats

    def test_archive_consistent_with_engines(self, pipeline):
        cloud = pipeline.cloud
        now = cloud.clock.now()
        zone = cloud.catalog.supported_zones("p3.2xlarge", "us-east-1")[0]
        assert pipeline.archive.sps_at("p3.2xlarge", "us-east-1", zone, now) \
            == cloud.placement.zone_score("p3.2xlarge", "us-east-1", zone, now)


class TestServing:
    def test_history_roundtrip(self, pipeline):
        now = pipeline.cloud.clock.now()
        response = pipeline.gateway.get("/sps/history", {
            "instance_type": "m5.large", "region": "us-east-1",
            "start": str(now - 12 * 3600.0), "end": str(now)})
        assert response.status == 200
        assert response.body["count"] >= 1

    def test_latest_serves_all_datasets(self, pipeline):
        cloud = pipeline.cloud
        zone = cloud.catalog.supported_zones("m5.large", "us-east-1")[0]
        response = pipeline.gateway.get("/latest", {
            "instance_type": "m5.large", "region": "us-east-1",
            "zone": zone, "at": str(cloud.clock.now())})
        body = response.body
        assert body["sps"] is not None
        assert body["if_score"] is not None
        assert body["spot_price"] is not None
        assert body["savings"] is not None


class TestAnalysisOnCollectedData:
    def test_value_distribution_from_collected_archive(self, pipeline):
        now = pipeline.cloud.clock.now()
        times = list(np.linspace(now - 10 * 3600.0, now, 8))
        dist = value_distribution(pipeline.archive, times)
        assert dist.sps_observations > 0
        assert sum(dist.sps_percent.values()) == pytest.approx(100.0)

    def test_update_study_from_collected_archive(self, pipeline):
        study = update_frequency_study(pipeline.archive)
        # 12 hours rarely shows advisor updates; sps/price may have some
        assert isinstance(study.intervals["sps"], np.ndarray)


class TestExperimentToPrediction:
    def test_full_study(self):
        service = SpotLakeService(ServiceConfig(seed=1))
        cloud = service.cloud
        submit = cloud.clock.start + 20 * 86400.0
        cloud.clock.set(submit)
        cases = sample_cases(cloud, submit, per_combo=30)
        results = ExperimentRunner(cloud).run_all(cases)
        rows = table3(results)
        assert rows

        pools = sorted({(c.instance_type, c.region, c.availability_zone)
                        for c in cases})
        times = np.linspace(submit - 30 * 86400.0, submit, 40)
        service.bulk_backfill(times.tolist(), pools=pools,
                              include_price=False)
        scores = prediction_study(service.archive, results, submit,
                                  n_estimators=20)
        assert len(scores) == 4
