"""Cross-module property-based tests on system invariants."""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import SimulatedCloud
from repro.cloudsim import ALLOWED_TRANSITIONS, RequestState
from repro.core import SpotLakeArchive
from repro.timeseries import Record, Table

#: One shared world for the property tests (hypothesis re-runs are cheap
#: against the lazily evaluated market).
_CLOUD = SimulatedCloud(seed=0)
_POOLS = _CLOUD.catalog.all_pools()

pool_strategy = st.integers(min_value=0, max_value=len(_POOLS) - 1)
day_strategy = st.floats(min_value=0.0, max_value=181.0)


class TestMarketInvariants:
    @given(pool_strategy, day_strategy)
    @settings(max_examples=150, deadline=None)
    def test_headroom_always_in_unit_interval(self, pool_index, day):
        itype, region, zone = _POOLS[pool_index]
        t = _CLOUD.clock.start + day * 86400.0
        assert 0.0 <= _CLOUD.market.headroom(itype, region, zone, t) <= 1.0

    @given(pool_strategy, day_strategy)
    @settings(max_examples=100, deadline=None)
    def test_score_consistent_with_headroom(self, pool_index, day):
        """The published score is exactly the quantized effective headroom."""
        from repro.cloudsim.placement import THRESHOLD_2, THRESHOLD_3
        itype, region, zone = _POOLS[pool_index]
        t = _CLOUD.clock.start + day * 86400.0
        h = _CLOUD.placement.effective_headroom(itype, region, zone, t)
        score = _CLOUD.placement.zone_score(itype, region, zone, t)
        if h >= THRESHOLD_3:
            assert score == 3
        elif h >= THRESHOLD_2:
            assert score == 2
        else:
            assert score == 1

    @given(pool_strategy, day_strategy,
           st.integers(min_value=1, max_value=100))
    @settings(max_examples=100, deadline=None)
    def test_capacity_never_raises_score(self, pool_index, day, capacity):
        itype, region, zone = _POOLS[pool_index]
        t = _CLOUD.clock.start + day * 86400.0
        single = _CLOUD.placement.zone_score(itype, region, zone, t, 1)
        many = _CLOUD.placement.zone_score(itype, region, zone, t, capacity)
        assert many <= single

    @given(pool_strategy, day_strategy)
    @settings(max_examples=100, deadline=None)
    def test_price_below_on_demand(self, pool_index, day):
        itype, region, zone = _POOLS[pool_index]
        t = _CLOUD.clock.start + day * 86400.0
        price = _CLOUD.pricing.spot_price(itype, region, t, zone)
        assert 0 < price < _CLOUD.catalog.instance_type(itype).on_demand_price


class TestLifecycleInvariants:
    @given(pool_strategy, day_strategy)
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.filter_too_much])
    def test_every_timeline_is_legal(self, pool_index, day):
        itype, region, zone = _POOLS[pool_index]
        t = _CLOUD.clock.start + day * 86400.0
        request = _CLOUD.request_simulator.submit(
            itype, region, zone, bid_price=1.0, created_at=t,
            persistent=True)
        previous = RequestState.PENDING_EVALUATION
        for event in request.events:
            assert event.state in ALLOWED_TRANSITIONS[previous]
            assert event.timestamp >= request.created_at
            previous = event.state
        times = [e.timestamp for e in request.events]
        assert times == sorted(times)


class TestArchiveInvariants:
    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=1000),
                              st.integers(min_value=1, max_value=3)),
                    min_size=1, max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_archive_point_reads_match_last_write(self, writes):
        """Whatever order of (time, value) observations is archived, the
        point-read at any write instant returns the latest value written
        at or before it."""
        archive = SpotLakeArchive()
        writes = sorted(writes, key=lambda wv: wv[0])
        for t, v in writes:
            archive.put_sps("a.large", "r1", "r1a", v, float(t))
        for t, _ in writes:
            expected = [v for (wt, v) in writes if wt <= t][-1]
            assert archive.sps_at("a.large", "r1", "r1a", float(t)) == expected

    @given(st.lists(st.integers(min_value=1, max_value=3), min_size=1,
                    max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_dedup_never_loses_information(self, values):
        table = Table("t")
        for t, v in enumerate(values):
            table.write(Record.make({"k": "x"}, "m", v, float(t)))
        for t, v in enumerate(values):
            assert table.value_at("m", {"k": "x"}, float(t)) == v


class TestDurabilityInvariants:
    """Snapshot persistence and the storage engine are two independent
    serializations of the same store; for any write stream, both must
    reconstruct byte-identical state."""

    write_stream = st.lists(
        st.tuples(st.integers(min_value=0, max_value=3),    # series
                  st.integers(min_value=1, max_value=3),    # value
                  st.integers(min_value=0, max_value=500)),  # time
        min_size=1, max_size=60)

    @staticmethod
    def _digests(store, directory):
        import hashlib
        from repro.timeseries import dump_store

        dump_store(store, directory)
        return {p.name: hashlib.sha256(p.read_bytes()).hexdigest()
                for p in sorted(directory.glob("*.jsonl"))}

    @given(write_stream, st.integers(min_value=1, max_value=5),
           st.booleans())
    @settings(max_examples=25, deadline=None)
    def test_snapshot_and_engine_recovery_agree(self, writes, per_round,
                                                checkpoint):
        import tempfile
        from pathlib import Path

        from repro.storage import StorageEngine, recover
        from repro.timeseries import RetentionPolicy, load_store

        writes = sorted(writes, key=lambda svt: svt[2])
        with tempfile.TemporaryDirectory() as tmp:
            base = Path(tmp)
            (base / "data").mkdir()
            engine = StorageEngine(base / "data", tier_fanout=2)
            store = engine.recovered.store
            engine.attach(store)
            policy = RetentionPolicy(None)
            engine.log_create_table("t", policy)
            store.create_table("t", policy)
            round_index = 0
            for start in range(0, len(writes), per_round):
                for series, value, time in writes[start:start + per_round]:
                    record = Record.make({"k": f"s{series}"}, "m", value,
                                         float(time))
                    engine.log_record("t", record)
                    store.table("t").write(record)
                round_index += 1
                engine.commit_round(float(round_index))
                if checkpoint and round_index % 2 == 0:
                    engine.checkpoint(float(round_index))
            engine.close()

            # path A: snapshot dump -> load; path B: WAL/segment recovery
            from repro.timeseries import dump_store

            recovered = recover(base / "data").store
            dump_store(store, base / "snap")
            reloaded = load_store(base / "snap")
            live = self._digests(store, base / "live")
            assert self._digests(recovered, base / "recovered") == live
            assert self._digests(reloaded, base / "reloaded") == live


class TestChaosInvariants:
    """Under any seeded fault schedule, no planned query is silently lost:
    every one ends as a retry-cleared success or an explicit gap record."""

    @given(st.integers(min_value=0, max_value=2 ** 32 - 1),
           st.sampled_from(["light", "moderate", "heavy"]))
    @settings(max_examples=20, deadline=None)
    def test_no_query_silently_dropped(self, chaos_seed, profile):
        from tests.chaos.conftest import build_chaos_service

        service = build_chaos_service(profile, chaos_seed=chaos_seed,
                                      retry_attempts=2)
        reports = service.collect_once()
        plan_count = service.plan.optimized_query_count
        sps = reports["sps"]
        assert sps.queries_issued == plan_count
        assert sps.queries_failed == sps.gaps
        sps_gaps = len(service.archive.gap_history({"Source": "sps"}))
        assert sps_gaps == sps.gaps
        for name in ("advisor", "price"):
            report = reports[name]
            assert report.queries_failed == report.gaps
            assert report.queries_failed + (report.records_written > 0) >= 1
        total_gaps = sum(r.gaps for r in reports.values())
        assert service.archive.gap_count() == total_gaps

    @given(st.integers(min_value=0, max_value=2 ** 16))
    @settings(max_examples=10, deadline=None)
    def test_fault_schedule_is_a_pure_function_of_seed(self, chaos_seed):
        from repro.cloudsim import FaultInjector, FaultPlan, resolve_profile
        from repro.cloudsim.clock import SimulationClock

        schedules = []
        for _ in range(2):
            clock = SimulationClock()
            injector = FaultInjector(
                FaultPlan(seed=chaos_seed,
                          profile=resolve_profile("heavy")), clock)
            kinds = []
            for _ in range(40):
                try:
                    injector.before_call("sps")
                except Exception as exc:
                    kinds.append(type(exc).__name__)
                else:
                    kinds.append("ok")
            schedules.append(kinds)
        assert schedules[0] == schedules[1]


class TestReadCacheInvariants:
    """The read cache must never change what a query returns: across any
    seeded interleaving of writes and reads, cached and uncached results
    serialize byte-identically."""

    MEASURES = ("sps", "spot_price")
    TYPES = ("m5.large", "c5.xlarge", "r5.2xlarge")
    ZONES = ("a", "b")

    @staticmethod
    def _serialize(records):
        import json
        return json.dumps(
            [[r.time, r.measure_name, r.value, r.dimension_dict]
             for r in records], sort_keys=True)

    @given(st.integers(min_value=0, max_value=2 ** 16),
           st.integers(min_value=5, max_value=60))
    @settings(max_examples=25, deadline=None)
    def test_cached_reads_byte_identical_across_interleavings(self, seed,
                                                              ops):
        import numpy as np
        from repro.timeseries import QueryCache

        rng = np.random.default_rng(seed)
        table = Table("t")
        cache = QueryCache(table, max_entries=8)  # small: exercise LRU too
        clock = 0.0
        for _ in range(ops):
            clock += float(rng.integers(1, 100))
            op = rng.integers(0, 4)
            measure = self.MEASURES[rng.integers(len(self.MEASURES))]
            itype = self.TYPES[rng.integers(len(self.TYPES))]
            zone = self.ZONES[rng.integers(len(self.ZONES))]
            filters = [None, {"it": itype}, {"it": itype, "zone": zone}][
                rng.integers(3)]
            if op == 0:  # write (dedup-heavy values: non-change writes too)
                table.write(Record.make(
                    {"it": itype, "region": "us-east-1", "zone": zone},
                    measure, int(rng.integers(1, 4)), clock))
            elif op == 1:  # range scan
                start = float(rng.integers(0, int(clock) + 1))
                end = start + float(rng.integers(0, 2000))
                assert self._serialize(
                    cache.scan(measure, filters, start, end)) == \
                    self._serialize(table.scan(measure, filters, start, end))
            elif op == 2:  # latest
                assert self._serialize(cache.latest(measure, filters)) == \
                    self._serialize(table.latest(measure, filters))
            else:  # point lookup
                dims = {"it": itype, "region": "us-east-1", "zone": zone}
                t = float(rng.integers(0, int(clock) + 1))
                assert cache.value_at(measure, dims, t) == \
                    table.value_at(measure, dims, t)
        # retention sweep is also just a write-like mutation to the cache
        table.evict_before(clock / 2)
        for measure in self.MEASURES:
            assert self._serialize(cache.scan(measure)) == \
                self._serialize(table.scan(measure))
