"""Shared helpers for the tiered-lake suite.

Tests drive archives with a small synthetic workload that is a pure
function of (round, series): a rotating 1-in-``churn`` schedule decides
which series take a new value each round, so two archives driven
identically hold byte-identical data -- the invariant every federation
and recovery test leans on.  Services are built inside tests (never at
module scope) so ``SPOTCONC_SANITIZE=1`` runs track every lock.
"""

from __future__ import annotations

from repro.core.archive import SpotLakeArchive

#: Simulation epoch (2022-01-01 UTC), matching the cloudsim clock.
EPOCH = 1640995200.0
REGION = "test-region-1"


def drive_round(archive: SpotLakeArchive, r: int, types: int = 6,
                zones: int = 2, interval: float = 600.0,
                churn: int = 4) -> float:
    """One synthetic collection round; returns the committed time."""
    t = EPOCH + r * interval
    for p in range(types):
        itype = f"pool{p}.large"
        a_epoch = (r + p) // churn
        archive.put_advisor(itype, REGION,
                            round(0.05 + 0.01 * ((a_epoch + p) % 5), 4),
                            float((a_epoch + p) % 4),
                            ((a_epoch + p) % 10) * 10, t)
        for z in range(zones):
            zone = f"{REGION}{chr(ord('a') + z)}"
            pool = p * zones + z
            epoch = (r + pool) // churn
            archive.put_sps(itype, REGION, zone, (epoch + pool) % 3 + 1, t)
            archive.put_price(itype, REGION, zone,
                              round(1.0 + 0.0001 * ((epoch + pool) % 50), 4),
                              t)
    archive.commit_round(t)
    return t
