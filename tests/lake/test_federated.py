"""Federated history: hot/cold boundary splits, pagination, recovery.

The headline property (issue satellite): for *any* eviction boundary, a
lake archive's federated history -- and a cursor-paginated walk over it
through the serving gateway -- is byte-identical to an un-evicted
in-memory reference driven with the same rounds.
"""

import shutil
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.archive import SpotLakeArchive
from repro.core.serving import ApiGateway
from repro.lake import (
    FederatedHistory,
    IF_SCORE_MEASURE,
    LAKE_CRASH_WINDOWS,
    LAKE_DIR_NAME,
    PRICE_MEASURE,
    SPS_MEASURE,
    SpotDataLake,
)
from repro.timeseries import RetentionPolicy

from .conftest import EPOCH, REGION, drive_round

INTERVAL = 600.0

#: (table, measure, filters) probes spanning all three hot tables,
#: with and without dimension pushdown.
QUERIES = (
    ("sps", SPS_MEASURE, {}),
    ("sps", SPS_MEASURE, {"InstanceType": "pool1.large"}),
    ("advisor", IF_SCORE_MEASURE, {}),
    ("price", PRICE_MEASURE, {"AvailabilityZone": f"{REGION}a"}),
)


def _drive_pair(lake_archive, reference, rounds, churn=4):
    last = EPOCH
    for r in range(rounds):
        drive_round(lake_archive, r, interval=INTERVAL, churn=churn)
        last = drive_round(reference, r, interval=INTERVAL, churn=churn)
    return last


class TestPlanner:
    def test_no_eviction_is_hot_only(self):
        planner = FederatedHistory(SpotDataLake.__new__(SpotDataLake))
        plan = planner.plan(SPS_MEASURE, EPOCH, EPOCH + 100, None)
        assert plan.boundary == float("-inf")
        assert not plan.use_cold and plan.use_hot

    def test_window_split_at_boundary(self):
        planner = FederatedHistory(SpotDataLake.__new__(SpotDataLake))
        both = planner.plan(SPS_MEASURE, EPOCH, EPOCH + 100, EPOCH + 50)
        assert both.use_cold and both.use_hot
        cold_only = planner.plan(SPS_MEASURE, EPOCH, EPOCH + 50, EPOCH + 50)
        assert cold_only.use_cold and not cold_only.use_hot
        hot_only = planner.plan(SPS_MEASURE, EPOCH + 51, EPOCH + 100,
                                EPOCH + 50)
        assert not hot_only.use_cold and hot_only.use_hot


class TestFederatedArchive:
    def test_history_matches_unevicted_reference(self, tmp_path):
        archive = SpotLakeArchive(
            data_dir=tmp_path, lake=True,
            retention=RetentionPolicy(max_age_seconds=4 * INTERVAL))
        reference = SpotLakeArchive(cache=False)
        try:
            last = _drive_pair(archive, reference, rounds=12)
            assert archive.evicted_through("sps") is not None
            for table, measure, filters in QUERIES:
                fed = archive.history(table, measure, filters, EPOCH, last)
                hot = reference.history(table, measure, filters, EPOCH, last)
                assert fed == hot, (table, measure, filters)
            stats = archive._federated.stats()
            assert stats["cold_queries"] == len(QUERIES)
            assert stats["cold_rows"] > 0
        finally:
            archive.close()
            reference.close()

    def test_compaction_keeps_federation_exact(self, tmp_path):
        archive = SpotLakeArchive(
            data_dir=tmp_path, lake=True,
            retention=RetentionPolicy(max_age_seconds=3 * INTERVAL))
        reference = SpotLakeArchive(cache=False)
        try:
            last = _drive_pair(archive, reference, rounds=10)
            archive.lake.compact(include_active=True)
            for table, measure, filters in QUERIES:
                assert archive.history(table, measure, filters, EPOCH, last) \
                    == reference.history(table, measure, filters, EPOCH, last)
        finally:
            archive.close()
            reference.close()


@settings(max_examples=10, deadline=None)
@given(retention_rounds=st.integers(min_value=1, max_value=12),
       churn=st.sampled_from([1, 2, 4]),
       limit=st.integers(min_value=1, max_value=7))
def test_federated_walk_matches_reference(retention_rounds, churn, limit):
    """Any eviction boundary: full reads and paged walks are identical.

    The cursor walk pages through the gateway with a small ``limit`` so
    at least one page straddles the hot/cold boundary; the concatenated
    pages must equal the un-evicted reference exactly -- no duplicated
    and no skipped row at any page edge.
    """
    base = Path(tempfile.mkdtemp(prefix="lake-fed-"))
    archive = SpotLakeArchive(
        data_dir=base, lake=True,
        retention=RetentionPolicy(max_age_seconds=retention_rounds * INTERVAL))
    reference = SpotLakeArchive(cache=False)
    try:
        last = _drive_pair(archive, reference, rounds=12, churn=churn)
        for table, measure, filters in QUERIES:
            assert archive.history(table, measure, filters, EPOCH, last) \
                == reference.history(table, measure, filters, EPOCH, last)

        gateway = ApiGateway(archive)
        ref_gateway = ApiGateway(reference)
        params = {"start": str(EPOCH), "end": str(last)}
        expected = ref_gateway.get("/sps/history", dict(params))
        assert expected.status == 200

        walked, token, pages = [], None, 0
        while True:
            page_params = dict(params, limit=str(limit))
            if token is not None:
                page_params["next_token"] = token
            page = gateway.get("/sps/history", page_params)
            assert page.status == 200
            walked.extend(page.body["rows"])
            token = page.body["next_token"]
            pages += 1
            if token is None:
                break
            assert pages <= expected.body["total"] + 1  # no cursor loop
        assert walked == expected.body["rows"]
    finally:
        archive.close()
        reference.close()
        shutil.rmtree(base, ignore_errors=True)


@pytest.mark.parametrize("window", LAKE_CRASH_WINDOWS)
def test_lake_crash_window_recovers_byte_identical(tmp_path, window):
    """Crash inside each lake publish step; recovery trims and re-lands."""
    from repro.cloudsim.faults import (
        CrashInjector,
        SimulatedCrash,
        seeded_crash_point,
    )
    from repro.storage import recover

    rounds = 5
    reference = SpotLakeArchive(data_dir=tmp_path / "reference",
                                checkpoint_every=2, lake=True)
    ref_lake = {0: reference.lake.digest()}
    for committed in range(1, rounds + 1):
        drive_round(reference, committed - 1, types=3)
        ref_lake[committed] = reference.lake.digest()
    reference.close()

    point = seeded_crash_point(0, window, rounds)
    crash_dir = tmp_path / "victim"
    victim = SpotLakeArchive(data_dir=crash_dir, checkpoint_every=2,
                             lake=True, crash_hook=CrashInjector([point]))
    with pytest.raises(SimulatedCrash):
        for r in range(rounds):
            drive_round(victim, r, types=3)
    victim.close()

    state = recover(crash_dir)
    recovered = SpotDataLake(crash_dir / LAKE_DIR_NAME)
    recovered.trim_to(state.last_commit_time)
    assert recovered.digest() == ref_lake[state.rounds_committed]

    # a restarted lake archive adopts the trimmed tier and can keep going
    resumed = SpotLakeArchive(data_dir=crash_dir, checkpoint_every=2,
                              lake=True)
    try:
        assert resumed.lake.round_count == state.rounds_committed
        for r in range(state.rounds_committed, rounds):
            drive_round(resumed, r, types=3)
        assert resumed.lake.digest() == ref_lake[rounds]
    finally:
        resumed.close()
