"""Units for the round merger and the changed-rows differ."""

import pytest

from repro.lake import (
    IF_SCORE_MEASURE,
    INTERRUPTION_RATIO_MEASURE,
    MergedRound,
    RoundDiffer,
    RoundMerger,
    SAVINGS_MEASURE,
    SPS_MEASURE,
    SPS_TABLE,
)

T0 = 1640995200.0


def _round(time, sps=(), advisor=(), price=()):
    merger = RoundMerger()
    merger.add_sps_rows(list(sps))
    merger.add_advisor_rows(list(advisor))
    merger.add_price_rows(list(price))
    return merger.take_round(time)


class TestMerger:
    def test_take_round_snapshots_and_clears(self):
        merger = RoundMerger()
        merger.add_sps("a.large", "r1", "r1a", 3, T0)
        merger.add_price("a.large", "r1", "r1a", 1.5, T0)
        merger.add_advisor("a.large", "r1", 0.05, 2.0, 60, T0)
        assert merger.pending_rows == 3
        merged = merger.take_round(T0)
        assert merger.pending_rows == 0
        assert merged.row_count == 3
        # an advisor row fans out to its three measures in record terms
        assert merged.record_count == 5
        assert merged.tables_touched() == ["sps", "advisor", "price"]

    def test_items_are_canonical_and_fan_out_advisor(self):
        merged = _round(T0,
                        sps=[("a.large", "r1", "r1a", 3, T0)],
                        advisor=[("a.large", "r1", 0.05, 2.0, 60, T0)])
        items = dict(merged.items())
        measures = sorted(k.measure_name for k in items)
        assert measures == sorted([SPS_MEASURE, INTERRUPTION_RATIO_MEASURE,
                                   IF_SCORE_MEASURE, SAVINGS_MEASURE])
        keys = [k for k, _ in merged.items()]
        assert keys == sorted(keys,
                              key=lambda k: (k.measure_name, k.dimensions))

    def test_items_sort_rows_by_time_within_series(self):
        merged = _round(T0 + 60,
                        sps=[("a.large", "r1", "r1a", 3, T0 + 60),
                             ("a.large", "r1", "r1a", 2, T0)])
        ((_, series),) = merged.items()
        assert series.times == [T0, T0 + 60]
        assert series.values == [2, 3]


class TestDiffer:
    def test_first_round_emits_everything(self):
        differ = RoundDiffer()
        diff = differ.diff(_round(T0, sps=[("a.large", "r1", "r1a", 3, T0)],
                                  price=[("a.large", "r1", "r1a", 1.5, T0)]))
        assert diff.rows_changed == diff.rows_seen == 2
        assert not diff.full_refresh

    def test_unchanged_rows_are_suppressed(self):
        differ = RoundDiffer()
        differ.diff(_round(T0, sps=[("a.large", "r1", "r1a", 3, T0)]))
        diff = differ.diff(_round(T0 + 600,
                                  sps=[("a.large", "r1", "r1a", 3, T0 + 600)]))
        assert diff.rows_changed == 0
        assert diff.rows_seen == 1

    def test_any_advisor_component_change_emits_the_row(self):
        differ = RoundDiffer()
        differ.diff(_round(T0, advisor=[("a.large", "r1", 0.05, 2.0, 60, T0)]))
        same = differ.diff(_round(
            T0 + 600, advisor=[("a.large", "r1", 0.05, 2.0, 60, T0 + 600)]))
        assert same.rows_changed == 0
        one_component = differ.diff(_round(
            T0 + 1200, advisor=[("a.large", "r1", 0.05, 2.5, 60, T0 + 1200)]))
        assert [r[:5] for r in one_component.advisor] == \
            [("a.large", "r1", 0.05, 2.5, 60)]

    def test_type_strict_comparison(self):
        differ = RoundDiffer()
        differ.diff(_round(T0, sps=[("a.large", "r1", "r1a", 3, T0)]))
        # int 3 -> float 3.0 is a change under the store's dedup rule
        diff = differ.diff(_round(T0 + 600,
                                  sps=[("a.large", "r1", "r1a", 3.0,
                                        T0 + 600)]))
        assert diff.rows_changed == 1

    def test_full_refresh_cadence(self):
        differ = RoundDiffer(full_refresh_every=3)
        emitted = []
        for r in range(7):
            diff = differ.diff(_round(
                T0 + 600 * r, sps=[("a.large", "r1", "r1a", 3, T0 + 600 * r)]))
            emitted.append((diff.full_refresh, diff.rows_changed))
        # rounds 0, 3 and 6 refresh; steady-state rounds emit nothing
        assert emitted == [(True, 1), (False, 0), (False, 0), (True, 1),
                           (False, 0), (False, 0), (True, 1)]

    def test_negative_refresh_cadence_rejected(self):
        with pytest.raises(ValueError):
            RoundDiffer(full_refresh_every=-1)

    def test_seed_restores_values_and_cadence(self):
        first = RoundDiffer(full_refresh_every=4)
        merged = _round(T0, sps=[("a.large", "r1", "r1a", 3, T0)],
                        price=[("a.large", "r1", "r1a", 1.5, T0)],
                        advisor=[("a.large", "r1", 0.05, 2.0, 60, T0)])
        first.diff(merged)

        # a restarted differ seeded from the lake's latest values must
        # behave exactly like the uninterrupted one
        items = [(key, series.values[-1]) for key, series in merged.items()]
        restarted = RoundDiffer(full_refresh_every=4)
        restarted.seed(items, rounds=first.rounds)
        assert restarted.stats() == first.stats()

        unchanged = _round(T0 + 600,
                           sps=[("a.large", "r1", "r1a", 3, T0 + 600)],
                           price=[("a.large", "r1", "r1a", 1.5, T0 + 600)],
                           advisor=[("a.large", "r1", 0.05, 2.0, 60,
                                     T0 + 600)])
        assert restarted.diff(unchanged).rows_changed == 0

    def test_gap_keeps_previous_value(self):
        differ = RoundDiffer()
        differ.diff(_round(T0, sps=[("a.large", "r1", "r1a", 3, T0)]))
        differ.diff(MergedRound(time=T0 + 600))  # collection gap
        diff = differ.diff(_round(T0 + 1200,
                                  sps=[("a.large", "r1", "r1a", 3,
                                        T0 + 1200)]))
        assert diff.rows_changed == 0
