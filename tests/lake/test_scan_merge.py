"""Order equivalence of the k-way ``scan`` merge (issue satellite).

``SpotDataLake.scan`` merges per-partition row runs with a k-way
``heapq.merge`` instead of re-sorting the concatenation.  The old
semantics were ``sorted(concat, key=time)`` with a *stable* sort, so the
merge must (a) produce time-sorted rows and (b) preserve
partition-append order on timestamp ties.  Both are asserted here across
multi-partition windows -- round files only, and a mix of compacted day
files plus live round files.
"""

from repro.lake import RoundMerger, SpotDataLake
from repro.lake.store import _merge_runs

from .conftest import EPOCH

DAY = 86400.0
INTERVAL = 600.0


def _fill(lake: SpotDataLake, rounds: int, per_day: int = 6) -> list:
    """Rounds spread over several days; returns the commit times."""
    times = []
    for r in range(rounds):
        t = EPOCH + (r // per_day) * DAY + (r % per_day) * INTERVAL
        merger = RoundMerger()
        for p in range(3):
            itype = f"pool{p}.large"
            merger.add_sps(itype, "r1", "r1a", (r + p) % 3 + 1, t)
            merger.add_price(itype, "r1", "r1a",
                             round(1.0 + 0.01 * ((r + p) % 5), 4), t)
        lake.append_round(merger.take_round(t))
        times.append(t)
    return times


def _reference_scan(lake: SpotDataLake, start: float, end: float):
    """The pre-merge semantics: stable re-sort of the concatenation."""
    match = lake._matcher(None, None)
    per_key = {}
    for part in lake.partitions:
        if part.end < start or part.start > end:
            continue
        for key, rows in lake._partition_scan(part, start, end, match):
            per_key.setdefault(key, []).extend(rows)
    return [(key, sorted(per_key[key], key=lambda row: row[0]))
            for key in sorted(per_key, key=lambda k: (k.measure_name,
                                                      k.dimensions))]


def test_merge_runs_is_stable_on_ties():
    """Equal timestamps keep run order, exactly like the stable sort."""
    a = [(1.0, "a1"), (3.0, "a3"), (3.0, "a3b")]
    b = [(2.0, "b2"), (3.0, "b3")]
    c = [(3.0, "c3"), (4.0, "c4")]
    merged = _merge_runs([a, b, c])
    assert merged == sorted(a + b + c, key=lambda row: row[0])
    # the tie block preserves run order a, a, b, c
    assert [v for t, v in merged if t == 3.0] == ["a3", "a3b", "b3", "c3"]
    # the single-run fast path returns the run itself
    assert _merge_runs([a]) is a


def test_scan_matches_stable_resort_across_partitions(tmp_path):
    lake = SpotDataLake(tmp_path)
    times = _fill(lake, rounds=18)
    assert len(lake.partitions) == 18
    windows = [
        (float("-inf"), float("inf")),
        (times[0], times[-1]),
        (times[2] + 1.0, times[11] - 1.0),   # interior, partition-unaligned
        (EPOCH + DAY, EPOCH + 2 * DAY),      # exactly one day
        (times[-1], times[-1]),              # single instant
    ]
    for start, end in windows:
        got = lake.scan(start, end)
        assert got == _reference_scan(lake, start, end), (start, end)
        for _key, rows in got:
            assert rows == sorted(rows, key=lambda row: row[0])


def test_scan_equivalence_survives_compaction_mix(tmp_path):
    """Day files + live round files in one window still merge correctly."""
    lake = SpotDataLake(tmp_path)
    times = _fill(lake, rounds=18)
    lake.compact()  # full days become day partitions; the last stays rounds
    kinds = {p.kind for p in lake.partitions}
    assert kinds == {"day", "round"}
    full = lake.scan(times[0], times[-1])
    assert full == _reference_scan(lake, times[0], times[-1])
    straddle = lake.scan(EPOCH + DAY + INTERVAL, times[-1])
    assert straddle == _reference_scan(lake, EPOCH + DAY + INTERVAL,
                                       times[-1])
