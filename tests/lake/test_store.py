"""Units for the date-partitioned cold lake store."""

import json

import pytest

from repro.lake import (
    LAKE_FORMAT,
    LAKE_MANIFEST_NAME,
    LakeFormatError,
    RoundMerger,
    SPS_MEASURE,
    SpotDataLake,
    lake_day,
)

T0 = 1640995200.0  # 2022-01-01 00:00:00 UTC
DAY = 86400.0


def _merged(time, score=3, price=1.5, itype="a.large"):
    merger = RoundMerger()
    merger.add_sps(itype, "r1", "r1a", score, time)
    merger.add_price(itype, "r1", "r1a", price, time)
    return merger.take_round(time)


def _fill(lake, times, scores=None):
    for index, t in enumerate(times):
        score = scores[index] if scores is not None else 3
        lake.append_round(_merged(t, score=score))


def test_lake_day_is_utc():
    assert lake_day(T0) == "2022/01/01"
    assert lake_day(T0 + DAY) == "2022/01/02"
    assert lake_day(T0 - 1.0) == "2021/12/31"


def test_append_publishes_versioned_manifest(tmp_path):
    lake = SpotDataLake(tmp_path)
    lake.append_round(_merged(T0))
    lake.append_round(_merged(T0 + 600, score=2))
    manifest = json.loads((tmp_path / LAKE_MANIFEST_NAME).read_text())
    assert manifest["format"] == LAKE_FORMAT
    assert manifest["version"] == 2
    assert [p["kind"] for p in manifest["partitions"]] == ["round", "round"]
    assert lake.round_times() == [T0, T0 + 600]
    assert (tmp_path / "2022" / "01" / "01").is_dir()


def test_empty_round_refused(tmp_path):
    lake = SpotDataLake(tmp_path)
    with pytest.raises(ValueError):
        lake.append_round(RoundMerger().take_round(T0))


def test_reload_is_digest_stable(tmp_path):
    lake = SpotDataLake(tmp_path)
    _fill(lake, [T0, T0 + 600, T0 + DAY])
    reloaded = SpotDataLake(tmp_path)
    assert reloaded.digest() == lake.digest()
    assert reloaded.round_times() == lake.round_times()
    assert reloaded.census() == lake.census()


def test_unsupported_manifest_format_raises(tmp_path):
    (tmp_path / LAKE_MANIFEST_NAME).write_text(
        '{"format": 99, "version": 1, "partitions": []}\n')
    with pytest.raises(LakeFormatError):
        SpotDataLake(tmp_path)


def test_undecodable_manifest_raises(tmp_path):
    (tmp_path / LAKE_MANIFEST_NAME).write_text('{"format": 1}\n')
    with pytest.raises(LakeFormatError):
        SpotDataLake(tmp_path)


def test_trim_to_drops_uncommitted_tail(tmp_path):
    lake = SpotDataLake(tmp_path)
    _fill(lake, [T0, T0 + 600, T0 + 1200])
    # the hot WAL only committed through the second round
    assert lake.trim_to(T0 + 600) == 1
    assert lake.round_times() == [T0, T0 + 600]
    # a fresh directory (no commits at all) trims everything
    assert SpotDataLake(tmp_path).trim_to(None) == 3


def test_trimmed_round_file_collected_on_next_publish(tmp_path):
    lake = SpotDataLake(tmp_path)
    _fill(lake, [T0, T0 + 600])
    lake.trim_to(T0)
    seg_files = lambda: sorted(p.name for p in tmp_path.rglob("*.seg"))
    assert len(seg_files()) == 2  # trim is in-memory; GC waits for publish
    lake.append_round(_merged(T0 + 600, score=1))
    assert len(seg_files()) == 2  # re-collected round replaced the orphan
    assert SpotDataLake(tmp_path).round_times() == [T0, T0 + 600]


def test_scan_windows_and_filters(tmp_path):
    lake = SpotDataLake(tmp_path)
    _fill(lake, [T0, T0 + 600, T0 + 1200], scores=[1, 2, 3])
    full = lake.scan()
    assert {key.measure_name for key, _ in full} == {SPS_MEASURE,
                                                     "spot_price"}
    sps = lake.scan(measure=SPS_MEASURE)
    ((key, rows),) = sps
    assert [v for _, v in rows] == [1, 2, 3]
    windowed = lake.scan(start=T0 + 600, end=T0 + 600, measure=SPS_MEASURE)
    assert [v for _, v in windowed[0][1]] == [2]
    assert lake.scan(filters={"InstanceType": "other.large"}) == []


def test_compact_preserves_change_points(tmp_path):
    lake = SpotDataLake(tmp_path)
    times = [T0 + 600 * i for i in range(6)] + \
        [T0 + DAY + 600 * i for i in range(6)]
    scores = [1, 1, 2, 2, 3, 3, 3, 4, 4, 5, 5, 5]
    _fill(lake, times, scores=scores)
    reference = lake.change_points(SPS_MEASURE, {}, T0, times[-1])

    summary = lake.compact()  # newest day stays active
    assert summary["days_compacted"] == 1
    assert [p.kind for p in lake.partitions].count("day") == 1
    assert lake.change_points(SPS_MEASURE, {}, T0, times[-1]) == reference

    summary = lake.compact(include_active=True)
    assert summary["days_compacted"] == 1
    assert all(p.kind == "day" for p in lake.partitions)
    assert lake.change_points(SPS_MEASURE, {}, T0, times[-1]) == reference
    # round accounting survives compaction, and reload agrees
    assert lake.round_times() == times
    assert SpotDataLake(tmp_path).digest() == lake.digest()


def test_change_points_baseline_suppresses_window_edge_reemit(tmp_path):
    lake = SpotDataLake(tmp_path)
    _fill(lake, [T0, T0 + 600, T0 + 1200], scores=[1, 1, 1])
    # value unchanged since T0: a window starting later must emit nothing
    assert lake.change_points(SPS_MEASURE, {}, T0 + 600, T0 + 1200) == []
    changed = SpotDataLake(tmp_path / "changed")
    _fill(changed, [T0, T0 + 600, T0 + 1200], scores=[1, 2, 2])
    rows = changed.change_points(SPS_MEASURE, {}, T0 + 600, T0 + 1200)
    assert [(r.time, r.value) for r in rows] == [(T0 + 600, 2)]


def test_latest_values_and_census(tmp_path):
    lake = SpotDataLake(tmp_path)
    _fill(lake, [T0, T0 + 600], scores=[1, 4])
    latest = dict(lake.latest_values())
    sps_latest = [v for key, v in latest.items()
                  if key.measure_name == SPS_MEASURE]
    assert sps_latest == [4]
    census = lake.census()
    assert census["rounds"] == 2
    assert census["partitions"] == 2
    assert census["days"] == 1
    assert census["start"] == T0 and census["end"] == T0 + 600


def test_rounds_on_and_round_snapshot(tmp_path):
    lake = SpotDataLake(tmp_path)
    merger = RoundMerger()
    merger.add_sps("a.large", "r1", "r1a", 3, T0)
    merger.add_price("a.large", "r1", "r1a", 1.5, T0)
    merger.add_advisor("a.large", "r1", 0.05, 2.0, 60, T0)
    merger.add_advisor("b.large", "r1", 0.10, 1.0, 50, T0)  # pair, no zone
    lake.append_round(merger.take_round(T0))
    assert lake.rounds_on("2022-01-01") == [T0]
    assert lake.rounds_on("2022/01/01") == [T0]
    assert lake.rounds_on("2022-01-02") == []

    rows = lake.round_snapshot(T0)
    assert [r["instance_type"] for r in rows] == ["a.large", "b.large"]
    wide = rows[0]
    assert wide["sps"] == 3 and wide["spot_price"] == 1.5
    assert wide["if_score"] == 2.0 and wide["savings"] == 60
    assert rows[1]["zone"] is None and rows[1]["sps"] is None
    with pytest.raises(KeyError):
        lake.round_snapshot(T0 + 1.0)
