"""Tests for the random forest."""

import numpy as np
import pytest

from repro.mlcore import RandomForestClassifier, accuracy


def noisy_data(n=300, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 4))
    y = ((X[:, 0] + 0.5 * X[:, 1] > 0).astype(int)
         + (X[:, 2] > 1).astype(int))
    return X, y


class TestFit:
    def test_learns_signal(self):
        X, y = noisy_data()
        forest = RandomForestClassifier(n_estimators=30, random_state=0)
        forest.fit(X[:200], y[:200])
        assert accuracy(y[200:], forest.predict(X[200:])) > 0.80

    def test_deterministic_given_seed(self):
        X, y = noisy_data()
        a = RandomForestClassifier(n_estimators=10, random_state=5).fit(X, y)
        b = RandomForestClassifier(n_estimators=10, random_state=5).fit(X, y)
        assert np.array_equal(a.predict(X), b.predict(X))

    def test_proba_shape_and_simplex(self):
        X, y = noisy_data(100)
        forest = RandomForestClassifier(n_estimators=10, random_state=0).fit(X, y)
        proba = forest.predict_proba(X[:10])
        assert proba.shape == (10, int(y.max()) + 1)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_handles_class_missing_from_bootstrap(self):
        """A rare class can vanish from a bootstrap draw without breaking
        probability alignment."""
        rng = np.random.default_rng(0)
        X = rng.normal(size=(50, 2))
        y = np.zeros(50, dtype=int)
        y[:2] = 2  # rare top class
        forest = RandomForestClassifier(n_estimators=20, random_state=0).fit(X, y)
        proba = forest.predict_proba(X)
        assert proba.shape[1] == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(n_estimators=0)
        with pytest.raises(ValueError):
            RandomForestClassifier().fit(np.zeros((0, 2)), np.zeros(0))
        with pytest.raises(RuntimeError):
            RandomForestClassifier().predict(np.zeros((1, 2)))

    def test_feature_importances_sum_to_one(self):
        X, y = noisy_data(150)
        forest = RandomForestClassifier(n_estimators=10, random_state=0).fit(X, y)
        importances = forest.feature_importances()
        assert importances.shape == (4,)
        assert abs(importances.sum() - 1.0) < 1e-9
        # the dominant signal feature should matter most or near-most
        assert importances[0] >= np.sort(importances)[-2]
