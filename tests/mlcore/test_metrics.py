"""Tests for classification metrics."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.mlcore import (
    accuracy,
    classification_report,
    confusion_matrix,
    macro_f1,
    precision_recall_f1,
)

labels = st.lists(st.integers(min_value=0, max_value=3), min_size=1,
                  max_size=50)


class TestAccuracy:
    def test_perfect(self):
        assert accuracy([0, 1, 2], [0, 1, 2]) == 1.0

    def test_partial(self):
        assert accuracy([0, 1, 2, 2], [0, 1, 0, 0]) == 0.5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            accuracy([], [])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy([0, 1], [0])

    @given(labels)
    def test_self_accuracy_is_one(self, y):
        assert accuracy(y, y) == 1.0


class TestConfusionMatrix:
    def test_known_case(self):
        cm = confusion_matrix([0, 0, 1, 1], [0, 1, 1, 1])
        assert cm.tolist() == [[1, 1], [0, 2]]

    def test_explicit_class_count(self):
        cm = confusion_matrix([0], [0], n_classes=3)
        assert cm.shape == (3, 3)

    @given(labels)
    def test_total_preserved(self, y):
        cm = confusion_matrix(y, list(reversed(y)))
        assert cm.sum() == len(y)


class TestPrecisionRecallF1:
    def test_known_case(self):
        stats = precision_recall_f1([0, 0, 1, 1], [0, 1, 1, 1])
        assert stats["precision"][1] == pytest.approx(2 / 3)
        assert stats["recall"][0] == pytest.approx(0.5)

    def test_zero_division_is_zero(self):
        stats = precision_recall_f1([0, 0], [1, 1], n_classes=2)
        assert stats["precision"][0] == 0.0
        assert stats["f1"][0] == 0.0

    @given(labels)
    def test_f1_bounded(self, y):
        stats = precision_recall_f1(y, y[::-1])
        assert np.all(stats["f1"] >= 0.0) and np.all(stats["f1"] <= 1.0)

    @given(labels)
    def test_perfect_prediction_f1_one_for_present_classes(self, y):
        stats = precision_recall_f1(y, y)
        present = np.unique(y)
        assert np.all(stats["f1"][present] == 1.0)


class TestMacroF1:
    def test_macro_average(self):
        value = macro_f1([0, 0, 1, 1], [0, 1, 1, 1])
        per_class = precision_recall_f1([0, 0, 1, 1], [0, 1, 1, 1])["f1"]
        assert value == pytest.approx(per_class.mean())


class TestReport:
    def test_human_readable(self):
        report = classification_report([0, 1, 1], [0, 1, 0],
                                       class_names=["cat", "dog"])
        assert "cat" in report and "dog" in report
        assert "accuracy" in report
