"""Tests for stratified under-sampling and splitting."""

import numpy as np
import pytest

from repro.mlcore import stratified_undersample, train_test_split


class TestStratifiedUndersample:
    def test_balances_to_smallest(self):
        items = [("a", i) for i in range(20)] + [("b", i) for i in range(5)]
        sampled = stratified_undersample(items, stratum_of=lambda x: x[0],
                                         seed=0)
        counts = {"a": 0, "b": 0}
        for label, _ in sampled:
            counts[label] += 1
        assert counts == {"a": 5, "b": 5}

    def test_explicit_target(self):
        items = [("a", i) for i in range(20)] + [("b", i) for i in range(10)]
        sampled = stratified_undersample(items, stratum_of=lambda x: x[0],
                                         per_stratum=3, seed=0)
        assert len(sampled) == 6

    def test_small_strata_kept_whole(self):
        items = [("a", i) for i in range(2)] + [("b", i) for i in range(10)]
        sampled = stratified_undersample(items, stratum_of=lambda x: x[0],
                                         per_stratum=5, seed=0)
        labels = [x[0] for x in sampled]
        assert labels.count("a") == 2
        assert labels.count("b") == 5

    def test_spread_over_secondary_label(self):
        """The spread function round-robins so no secondary value hogs the
        sample (the paper's uniform type/zone distribution)."""
        items = [("s", f"type{i % 4}", i) for i in range(40)]
        sampled = stratified_undersample(
            items, stratum_of=lambda x: x[0],
            spread_of=lambda x: x[1], per_stratum=8, seed=0)
        spread_counts = {}
        for _, t, _ in sampled:
            spread_counts[t] = spread_counts.get(t, 0) + 1
        assert set(spread_counts.values()) == {2}  # 8 picks over 4 types

    def test_empty(self):
        assert stratified_undersample([], stratum_of=lambda x: x) == []

    def test_deterministic(self):
        items = [("a", i) for i in range(30)]
        a = stratified_undersample(items, stratum_of=lambda x: x[0],
                                   per_stratum=5, seed=3)
        b = stratified_undersample(items, stratum_of=lambda x: x[0],
                                   per_stratum=5, seed=3)
        assert a == b


class TestTrainTestSplit:
    def test_sizes(self):
        X = np.arange(40).reshape(20, 2)
        y = np.array([0, 1] * 10)
        Xtr, Xte, ytr, yte = train_test_split(X, y, 0.3, seed=0)
        assert len(Xtr) + len(Xte) == 20
        assert len(Xte) == 6  # 30% of each class

    def test_stratification_preserves_classes(self):
        y = np.array([0] * 30 + [1] * 10)
        X = np.zeros((40, 1))
        _, _, ytr, yte = train_test_split(X, y, 0.25, seed=1)
        assert set(np.unique(yte)) == {0, 1}

    def test_no_overlap(self):
        X = np.arange(30).reshape(30, 1)
        y = np.zeros(30, dtype=int)
        Xtr, Xte, _, _ = train_test_split(X, y, 0.4, seed=2)
        assert not set(Xtr[:, 0]) & set(Xte[:, 0])

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((4, 1)), np.zeros(4), 1.5)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((4, 1)), np.zeros(3), 0.3)

    def test_unstratified_mode(self):
        X = np.arange(20).reshape(20, 1)
        y = np.zeros(20, dtype=int)
        _, Xte, _, _ = train_test_split(X, y, 0.25, seed=0, stratify=False)
        assert len(Xte) == 5
