"""Tests for the CART decision tree."""

import numpy as np
import pytest

from repro.mlcore import DecisionTreeClassifier


def xor_data(n=200, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, size=(n, 2))
    y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
    return X, y


class TestFit:
    def test_perfectly_separable(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0, 0, 1, 1])
        tree = DecisionTreeClassifier().fit(X, y)
        assert list(tree.predict(X)) == [0, 0, 1, 1]

    def test_xor_needs_depth_two(self):
        X, y = xor_data()
        tree = DecisionTreeClassifier(random_state=0).fit(X, y)
        assert tree.depth() >= 2
        assert np.mean(tree.predict(X) == y) > 0.95

    def test_max_depth_respected(self):
        X, y = xor_data()
        tree = DecisionTreeClassifier(max_depth=1).fit(X, y)
        assert tree.depth() <= 1

    def test_min_samples_split(self):
        X, y = xor_data(50)
        shallow = DecisionTreeClassifier(min_samples_split=40).fit(X, y)
        deep = DecisionTreeClassifier().fit(X, y)
        assert shallow.depth() <= deep.depth()

    def test_pure_node_stops(self):
        X = np.zeros((10, 1))
        y = np.zeros(10, dtype=int)
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.depth() == 0

    def test_constant_feature_is_leaf(self):
        X = np.ones((6, 1))
        y = np.array([0, 1, 0, 1, 0, 1])
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.depth() == 0  # no valid split on a constant column


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.zeros((0, 2)), np.zeros(0))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.zeros((3, 2)), np.zeros(2))

    def test_negative_labels_rejected(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.zeros((2, 1)), np.array([-1, 0]))

    def test_one_dim_x_rejected(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.zeros(5), np.zeros(5))

    def test_bad_min_samples(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(min_samples_split=1)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            DecisionTreeClassifier().predict(np.zeros((1, 2)))


class TestProba:
    def test_rows_sum_to_one(self):
        X, y = xor_data()
        tree = DecisionTreeClassifier(max_depth=2).fit(X, y)
        proba = tree.predict_proba(X[:20])
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_max_features_subsampling(self):
        X, y = xor_data()
        tree = DecisionTreeClassifier(max_features=1, random_state=0).fit(X, y)
        assert tree.depth() >= 1
