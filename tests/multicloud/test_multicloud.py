"""Tests for the Section-7 multi-vendor layer."""

import numpy as np
import pytest

from repro.cloudsim import SimulatedCloud
from repro.multicloud import (
    Access,
    AwsAdapter,
    AzureAdapter,
    GcpAdapter,
    HardwareProfile,
    MultiCloudArchive,
    availability_timelines,
    cheapest_by_vendor,
    cross_vendor_savings,
)

T0 = 1640995200.0 + 10 * 86400.0


@pytest.fixture(scope="module")
def vendors(cloud):
    return [AwsAdapter(cloud), AzureAdapter(), GcpAdapter()]


@pytest.fixture(scope="module")
def archive(vendors):
    archive = MultiCloudArchive(vendors)
    for day in (0, 1, 2):
        archive.collect(T0 + day * 86400.0, max_offerings_per_vendor=200)
    return archive


class TestAccessSurfaces:
    def test_paper_access_table(self, vendors):
        """Section 7's vendor-by-dataset access matrix."""
        by_name = {v.name: v for v in vendors}
        assert by_name["aws"].access.price is Access.API
        assert by_name["aws"].access.availability is Access.API
        assert by_name["aws"].access.interruption is Access.WEB
        assert by_name["azure"].access.price is Access.API
        assert by_name["azure"].access.availability is Access.WEB
        assert by_name["gcp"].access.price is Access.WEB
        assert by_name["gcp"].access.availability is Access.NONE
        assert by_name["gcp"].access.interruption is Access.NONE

    def test_gcp_publishes_price_only(self, vendors):
        gcp = next(v for v in vendors if v.name == "gcp")
        offering = gcp.offerings()[0]
        assert gcp.spot_price(offering.instance_type, offering.region, T0) > 0
        assert gcp.availability_score(offering.instance_type,
                                      offering.region, T0) is None
        assert gcp.interruption_ratio(offering.instance_type,
                                      offering.region, T0) is None

    def test_azure_availability_from_eviction(self, vendors):
        azure = next(v for v in vendors if v.name == "azure")
        offering = azure.offerings()[0]
        score = azure.availability_score(offering.instance_type,
                                         offering.region, T0)
        assert score in (1, 2, 3)


class TestOfferings:
    def test_vendor_specific_naming(self, vendors):
        names = {v.name: {o.instance_type for o in v.offerings()}
                 for v in vendors}
        assert any(n.startswith("Standard_") for n in names["azure"])
        assert any(n.startswith("e2-") or n.startswith("n2-")
                   for n in names["gcp"])
        assert not names["aws"] & names["azure"]

    def test_hardware_profiles_attached(self, vendors):
        for vendor in vendors:
            offering = vendor.offerings()[0]
            assert offering.hardware.vcpus > 0
            assert offering.hardware.memory_gib > 0


class TestCollection:
    def test_missing_datasets_reported(self, archive):
        report = archive.collect(T0 + 3 * 86400.0,
                                 max_offerings_per_vendor=50)
        assert report.datasets_missing["gcp"] == ["availability",
                                                  "interruption"]
        assert report.datasets_missing["aws"] == []
        assert report.total_records > 0

    def test_vendor_dimension_separates_series(self, archive):
        assert archive.vendors_with_dataset("price") == ["aws", "azure", "gcp"]
        assert archive.vendors_with_dataset("availability") == ["aws", "azure"]
        assert archive.vendors_with_dataset("interruption") == ["aws", "azure"]

    def test_duplicate_vendor_rejected(self, vendors):
        with pytest.raises(ValueError):
            MultiCloudArchive([vendors[0], vendors[0]])

    def test_price_readback(self, archive, vendors):
        gcp = next(v for v in vendors if v.name == "gcp")
        offering = gcp.offerings()[0]
        archived = archive.price_at("gcp", offering.instance_type,
                                    offering.region, T0 + 3 * 86400.0)
        assert archived is not None
        assert archived > 0


class TestCrossVendorAnalysis:
    def test_hardware_matched_quotes(self, archive):
        quotes = cheapest_by_vendor(archive, HardwareProfile(8, 32.0), T0)
        assert len(quotes) >= 2  # general 8-vcpu boxes exist everywhere
        prices = [q.price for q in quotes]
        assert prices == sorted(prices)
        assert len({q.vendor for q in quotes}) == len(quotes)

    def test_cross_vendor_savings(self, archive):
        quotes = cheapest_by_vendor(archive, HardwareProfile(8, 32.0), T0)
        savings = cross_vendor_savings(quotes)
        assert savings is not None
        assert 0.0 <= savings < 1.0

    def test_savings_undefined_for_single_quote(self):
        assert cross_vendor_savings([]) is None

    def test_availability_timelines_skip_gcp(self, archive):
        timelines = availability_timelines(
            archive, [T0, T0 + 86400.0, T0 + 2 * 86400.0])
        assert "gcp" not in timelines
        assert {"aws", "azure"} <= set(timelines)
        for series in timelines.values():
            good = series[~np.isnan(series)]
            assert np.all((good >= 1.0) & (good <= 3.0))
