"""Shared fixtures for the concurrent-serving suite.

Everything runs against a two-family, two-region catalog with a short
backfill so that races, shed episodes, and worker sweeps stay
sub-second.  Services are built *inside* fixtures/tests (never at module
scope) so that when the suite runs under ``SPOTCONC_SANITIZE=1`` every
lock is created after the sanitizer installs and is therefore tracked.
"""

from __future__ import annotations

import pytest

from repro import ServiceConfig, SimulatedCloud, SpotLakeService
from repro.cloudsim import Catalog, InstanceFamily, Region
from repro.core import Tenant

#: Samples in the default serving backfill (half-hourly).
DEFAULT_SAMPLES = 24


def build_serving_service(seed: int = 0, samples: int = DEFAULT_SAMPLES,
                          **config_kwargs) -> SpotLakeService:
    """A tiny-catalog service with a short half-hourly backfill."""
    families = [
        InstanceFamily("m9", "M", "general", ("large", "xlarge")),
        InstanceFamily("p9", "P", "accelerated", ("2xlarge",), "gpu", 3.0),
    ]
    regions = [Region("rg-one-1", "rg", 3), Region("rg-two-1", "rg", 2)]
    cloud = SimulatedCloud(seed=seed,
                           catalog=Catalog(seed=1, families=families,
                                           regions=regions))
    service = SpotLakeService(ServiceConfig(seed=seed, **config_kwargs),
                              cloud=cloud)
    start = cloud.clock.start
    times = [start + 1800.0 * i for i in range(samples)]
    service.bulk_backfill(times)
    cloud.clock.set(times[-1] + 1.0)
    return service


def generous_tenant(name: str = "dash") -> Tenant:
    """A tenant whose limits never bind (isolates non-throttle behaviour)."""
    return Tenant(name, rate=1_000_000.0, burst=1_000_000.0)


def full_range(service: SpotLakeService) -> dict:
    """History-query params covering the whole backfilled window."""
    clock = service.cloud.clock
    return {"start": str(clock.start - 1.0), "end": str(clock.now() + 1.0)}


@pytest.fixture()
def service() -> SpotLakeService:
    svc = build_serving_service()
    yield svc
    svc.close()
