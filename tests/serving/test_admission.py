"""Admission-control primitives: token buckets, quotas, tenants.

The frontend's determinism contract rests on these: a tenant's
admit/reject sequence must be a pure fold over its ``(arrival_time,
cost)`` sequence, identical whether the arrivals are replayed on one
thread or raced across many.
"""

import random
import threading

import pytest

from repro.core import RollingQuota, Tenant, TokenBucket


class TestTokenBucket:
    def test_burst_then_exact_deficit(self):
        bucket = TokenBucket(rate=2.0, burst=3)
        for _ in range(3):
            assert bucket.admit(0.0) == (True, 0.0)
        ok, retry_after = bucket.admit(0.0)
        assert not ok
        assert retry_after == pytest.approx(0.5)  # 1 token / 2 per second

    def test_refill_follows_virtual_time(self):
        bucket = TokenBucket(rate=2.0, burst=3)
        for _ in range(3):
            assert bucket.admit(0.0)[0]
        assert not bucket.admit(0.25)[0]  # only half a token back
        assert bucket.admit(0.75)[0]      # the other half arrived
        assert not bucket.admit(0.75)[0]

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=1.0, burst=3)
        assert bucket.admit(0.0)[0]
        # a huge idle gap must not bank more than the burst
        for _ in range(3):
            assert bucket.admit(1000.0)[0]
        assert not bucket.admit(1000.0)[0]

    def test_refund_caps_at_burst(self):
        bucket = TokenBucket(rate=1.0, burst=2)
        bucket.refund(10.0)
        assert bucket.tokens == 2.0

    def test_time_moving_backwards_never_drains(self):
        bucket = TokenBucket(rate=1.0, burst=2)
        assert bucket.admit(10.0)[0]
        # an out-of-order arrival must not produce a negative refill
        assert bucket.admit(5.0)[0]
        assert not bucket.admit(5.0)[0]

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0)

    def test_decision_sequence_is_a_pure_fold(self):
        rng = random.Random(7)
        now = 0.0
        arrivals = []
        for _ in range(200):
            now += rng.random() * 0.4
            arrivals.append(now)

        def fold(bucket):
            return [bucket.admit(t) for t in arrivals]

        first = fold(TokenBucket(rate=5.0, burst=4))
        second = fold(TokenBucket(rate=5.0, burst=4))
        assert first == second
        assert any(not ok for ok, _ in first)
        assert any(ok for ok, _ in first)


class TestRollingQuota:
    def test_limit_within_window(self):
        quota = RollingQuota(limit=2, window=60.0)
        assert quota.admit(0.0) == (True, 0.0)
        assert quota.admit(10.0) == (True, 0.0)
        ok, retry_after = quota.admit(20.0)
        assert not ok
        assert retry_after == pytest.approx(40.0)  # oldest expires at t=60

    def test_front_expiry_frees_capacity(self):
        quota = RollingQuota(limit=2, window=60.0)
        quota.admit(0.0)
        quota.admit(10.0)
        assert quota.admit(60.0)[0]  # the t=0 charge has aged out
        assert quota.used() == 2
        assert not quota.admit(60.0)[0]

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            RollingQuota(limit=0, window=60.0)
        with pytest.raises(ValueError):
            RollingQuota(limit=1, window=0.0)


class TestTenant:
    def test_default_api_key_derives_from_name(self):
        assert Tenant("alice").api_key == "key-alice"
        assert Tenant("bob", api_key="secret").api_key == "secret"

    def test_quota_veto_refunds_the_bucket(self):
        tenant = Tenant("t", rate=100.0, burst=5.0, quota_limit=1,
                        quota_window=60.0)
        assert tenant.admit(0.0) == (True, 0.0)
        ok, retry_after = tenant.admit(0.0)
        assert not ok
        assert retry_after == pytest.approx(60.0)
        # the vetoed grant went back: the bucket is a function of the
        # *admitted* sequence, not of every attempt
        assert tenant.bucket.tokens == pytest.approx(4.0)
        assert (tenant.admitted, tenant.rejected) == (1, 1)

    def test_bucket_rejection_never_charges_the_quota(self):
        tenant = Tenant("t", rate=1.0, burst=1.0, quota_limit=100,
                        quota_window=60.0)
        assert tenant.admit(0.0)[0]
        assert not tenant.admit(0.0)[0]
        assert tenant.quota.used() == 1


class TestInterleavingDeterminism:
    """The tentpole claim: thread interleaving cannot change decisions."""

    def _tenant_arrivals(self, seed, tenants=4, per_tenant=120):
        rng = random.Random(seed)
        arrivals = {}
        for i in range(tenants):
            now = 0.0
            times = []
            for _ in range(per_tenant):
                now += rng.random() * 0.3
                times.append(now)
            arrivals[f"t{i}"] = times
        return arrivals

    def test_raced_tenants_match_single_threaded_fold(self):
        arrivals = self._tenant_arrivals(seed=13)

        def make_tenants():
            return {name: Tenant(name, rate=6.0, burst=3.0, quota_limit=80,
                                 quota_window=30.0) for name in arrivals}

        reference = make_tenants()
        expected = {name: [reference[name].admit(t) for t in times]
                    for name, times in arrivals.items()}

        raced = make_tenants()
        decisions = {name: [] for name in arrivals}
        barrier = threading.Barrier(len(arrivals))

        def drive(name):
            barrier.wait()
            for t in arrivals[name]:
                decisions[name].append(raced[name].admit(t))

        threads = [threading.Thread(target=drive, args=(name,))
                   for name in arrivals]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert decisions == expected
        for name in arrivals:
            assert raced[name].admitted == reference[name].admitted
            assert raced[name].rejected == reference[name].rejected

    def test_shared_bucket_admits_exactly_burst_under_race(self):
        # at a frozen instant the balance is the only state: no matter
        # how 8 threads interleave, exactly `burst` grants exist
        bucket = TokenBucket(rate=0.001, burst=50)
        admitted = []
        lock = threading.Lock()
        barrier = threading.Barrier(8)

        def hammer():
            barrier.wait()
            grants = sum(1 for _ in range(25) if bucket.admit(0.0)[0])
            with lock:
                admitted.append(grants)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sum(admitted) == 50
