"""The /analytics route: validation, pagination, determinism, metrics.

The route is a thin parameter layer over the vectorized analytics
engine, so the contract here is (a) every malformed request is a 400
naming the offending parameter and the accepted values, (b) a paged walk
tiles the unpaginated result exactly, (c) repeated identical requests
are byte-identical, and (d) engine counters surface under /metrics.
"""

import ast
import json

from repro.devtools.engine import discover_files, module_identity

from .conftest import build_serving_service, full_range


def _get(service, params=None):
    return service.gateway.get("/analytics", dict(params or {}))


def _base_params(service, **extra):
    params = dict(full_range(service), dataset="sps")
    params.update(extra)
    return params


class TestValidation:
    def test_dataset_is_required_and_checked(self):
        service = build_serving_service()
        try:
            missing = _get(service, full_range(service))
            assert missing.status == 400
            assert "'dataset'" in missing.body["error"]
            unknown = _get(service, dict(full_range(service),
                                         dataset="weather"))
            assert unknown.status == 400
            for known in ("'advisor'", "'price'", "'sps'"):
                assert known in unknown.body["error"]
        finally:
            service.close()

    def test_unknown_parameter_is_a_400_listing_expected(self):
        service = build_serving_service()
        try:
            response = _get(service, _base_params(service, bucketsize="60"))
            assert response.status == 400
            message = response.body["error"]
            assert "'bucketsize'" in message
            for expected in ("'bucket'", "'group_by'", "'agg'", "'zone'"):
                assert expected in message
        finally:
            service.close()

    def test_zone_is_not_an_advisor_parameter(self):
        service = build_serving_service()
        try:
            response = _get(service, dict(full_range(service),
                                          dataset="advisor",
                                          zone="rg-one-1a"))
            assert response.status == 400
            assert "'zone'" in response.body["error"]
        finally:
            service.close()

    def test_bad_measure_agg_group_bucket_and_cursor(self):
        service = build_serving_service()
        try:
            cases = [
                (dict(measure="latency"), "'latency'"),
                (dict(agg="mean,median"), "'median'"),
                (dict(group_by="family"), "'family'"),
                (dict(bucket="0"), "'bucket'"),
                (dict(bucket="-60"), "'bucket'"),
                (dict(bucket="inf"), "'bucket'"),
                (dict(next_token="not-a-cursor"), "next_token"),
            ]
            for extra, needle in cases:
                response = _get(service, _base_params(service, **extra))
                assert response.status == 400, extra
                assert needle in response.body["error"], extra
        finally:
            service.close()

    def test_advisor_measures_are_selectable(self):
        service = build_serving_service()
        try:
            for measure in ("if_score", "interruption_ratio", "savings"):
                response = _get(service, dict(full_range(service),
                                              dataset="advisor",
                                              measure=measure))
                assert response.status == 200, measure
                assert response.body["measure"] == measure
        finally:
            service.close()


class TestResults:
    def test_grouped_bucketed_aggregates_match_the_engine(self):
        from repro.analysis import AnalyticsEngine

        service = build_serving_service()
        try:
            params = _base_params(service, group_by="region",
                                  agg="count,mean,last", bucket="21600")
            response = _get(service, params)
            assert response.status == 200
            body = response.body
            assert body["group_by"] == ["region"]
            assert body["aggregates"] == ["count", "mean", "last"]
            assert body["total"] == body["count"] == len(body["rows"])
            assert body["rows"], "backfill must produce populated cells"

            engine = AnalyticsEngine(service.archive)
            spec = engine.spec("sps", float(params["start"]),
                               float(params["end"]), bucket_seconds=21600.0,
                               group_by=("Region",),
                               aggregates=("count", "mean", "last"))
            result = engine.aggregate(spec)
            expected = []
            for g, label in enumerate(result.group_labels):
                for b in range(len(result.edges) - 1):
                    if result.count[g, b] <= 0:
                        continue
                    expected.append(
                        (label[0], float(result.edges[b]),
                         int(result.tables["count"][g, b]),
                         float(result.tables["mean"][g, b]),
                         float(result.tables["last"][g, b])))
            got = [(row["region"], row["bucket_start"], row["count"],
                    row["mean"], row["last"]) for row in body["rows"]]
            assert got == expected
            for row in body["rows"]:
                assert isinstance(row["count"], int)
                assert row["bucket_end"] > row["bucket_start"]
        finally:
            service.close()

    def test_filters_restrict_the_groups(self):
        service = build_serving_service()
        try:
            body = _get(service, _base_params(
                service, group_by="region", region="rg-one-1")).body
            assert {row["region"] for row in body["rows"]} == {"rg-one-1"}
        finally:
            service.close()

    def test_paged_walk_tiles_the_full_result(self):
        service = build_serving_service()
        try:
            params = _base_params(service, group_by="zone", bucket="43200",
                                  agg="count,mean")
            expected = _get(service, params)
            assert expected.status == 200
            walked, token = [], None
            while True:
                page_params = dict(params, limit="3")
                if token is not None:
                    page_params["next_token"] = token
                page = _get(service, page_params)
                assert page.status == 200
                assert page.body["count"] <= 3
                walked.extend(page.body["rows"])
                token = page.body["next_token"]
                if token is None:
                    break
            assert walked == expected.body["rows"]
        finally:
            service.close()

    def test_repeats_are_byte_identical(self):
        service = build_serving_service()
        try:
            params = _base_params(service, group_by="region",
                                  agg="count,mean,std,twa_mean", bucket="21600")
            first = _get(service, params)
            second = _get(service, params)
            assert first.status == second.status == 200
            assert first.json() == second.json()
        finally:
            service.close()


class TestObservability:
    def test_metrics_exposes_engine_counters(self):
        service = build_serving_service()
        try:
            before = service.gateway.get("/metrics").body["analytics"]
            response = _get(service, _base_params(service, group_by="region"))
            assert response.status == 200
            after = service.gateway.get("/metrics").body["analytics"]
            assert after["queries"] == before["queries"] + 1
            for counter in ("result_hits", "rollup_day_hits",
                            "rollup_day_recomputes", "chunks_pruned",
                            "chunks_decoded", "rows_decoded"):
                assert counter in after
        finally:
            service.close()

    def test_route_dispatch_is_metered(self):
        service = build_serving_service()
        try:
            _get(service, _base_params(service))
            routes = service.gateway.get("/metrics").body["routes"]
            assert "/analytics" in routes
            assert routes["/analytics"]["requests"] >= 1
        finally:
            service.close()


class TestDeterminism:
    """DET safety: no host-clock read is reachable from the handler."""

    def test_no_wall_clock_reachable_from_analytics_handler(self):
        from repro.devtools.astutil import is_wall_clock_call
        from repro.devtools.callgraph import CallGraph

        entries = []
        for path in discover_files(["src/repro"]):
            module, package = module_identity(path)
            entries.append((str(path), module, package,
                            ast.parse(path.read_text(encoding="utf-8"))))
        graph = CallGraph.build(entries)
        roots = graph.functions_matching("LambdaHandlers.analytics")
        assert roots, "analytics handler not found in the call graph"
        offenders = []
        for qual in sorted(graph.reachable(roots)):
            fn = graph.functions.get(qual)
            if fn is None:
                continue
            for node in ast.walk(fn.node):
                if isinstance(node, ast.Call) and is_wall_clock_call(node):
                    offenders.append(
                        (qual, graph.call_path(roots, qual)))
        assert not offenders, offenders

    def test_response_is_json_stable(self):
        service = build_serving_service()
        try:
            response = _get(service, _base_params(service, group_by="region"))
            rendered = response.json()
            assert json.loads(rendered) == json.loads(rendered)
            assert rendered == json.dumps(json.loads(rendered),
                                          sort_keys=True)
        finally:
            service.close()
