"""ServingFrontend behaviour: envelopes, metrics, shedding, worker sweeps.

Overload tests pin the queue deterministically by submitting *before*
``start()`` -- with no workers draining, queue occupancy is a pure
function of the submission sequence (see the frontend module docstring's
determinism contract).
"""

import hashlib
import threading

import pytest

from repro.core import ACCEPTING, SHEDDING, ServingFrontend, Tenant
from repro.devtools.servebench import build_workload

from .conftest import build_serving_service, full_range, generous_tenant


class TestEnvelopes:
    def test_unknown_api_key_is_401(self, service):
        frontend = service.frontend(tenants=[generous_tenant()])
        ticket = frontend.submit("not-a-key", "/stats")
        assert ticket.done()  # rejections resolve synchronously
        response = ticket.result(0)
        assert response.status == 401
        assert "api key" in response.body["error"]
        assert frontend.stats.unauthorized == 1
        # counted per route even though no handler ran
        snap = service.metrics.snapshot()
        assert snap["routes"]["/stats"]["by_status"]["401"] == 1

    def test_unknown_path_rejections_use_the_shared_label(self, service):
        frontend = service.frontend(tenants=[generous_tenant()])
        frontend.submit("not-a-key", "/no/such/route")
        snap = service.metrics.snapshot()
        assert snap["routes"]["<unknown>"]["by_status"]["401"] == 1

    def test_rate_limited_429_carries_retry_after(self, service):
        tenant = Tenant("slow", rate=1.0, burst=1.0)
        frontend = service.frontend(tenants=[tenant], workers=1)
        first = frontend.submit("key-slow", "/stats", arrival_time=0.0)
        second = frontend.submit("key-slow", "/stats", arrival_time=0.0)
        response = second.result(0)
        assert response.status == 429
        assert response.body["retry_after"] == pytest.approx(1.0)
        snap = service.metrics.snapshot()
        assert snap["tenants"]["slow"]["rate_limited"] == 1
        assert snap["totals"]["rate_limited"] == 1
        assert frontend.stats.rate_limited == 1
        with frontend:
            assert first.result(10.0).status == 200
        assert frontend.stats.served == 1

    def test_duplicate_api_key_rejected(self, service):
        with pytest.raises(ValueError):
            service.frontend(tenants=[Tenant("a", api_key="k"),
                                      Tenant("b", api_key="k")])


class TestShedStateMachine:
    def test_overflow_sheds_then_resumes_after_cooldown_and_drain(self,
                                                                  service):
        frontend = service.frontend(tenants=[generous_tenant()], workers=1,
                                    queue_depth=3, resume_depth=0,
                                    shed_cooldown=10.0)
        key = "key-dash"
        accepted = [frontend.submit(key, "/stats", arrival_time=0.0)
                    for _ in range(3)]
        overflow = frontend.submit(key, "/stats", arrival_time=0.0)
        response = overflow.result(0)
        assert response.status == 503
        assert response.body["retry_after"] == pytest.approx(10.0)
        assert frontend.snapshot()["state"] == SHEDDING
        assert frontend.stats.shed_events == 1

        # while shedding, later arrivals report the *remaining* window
        late = frontend.submit(key, "/stats", arrival_time=4.0).result(0)
        assert late.status == 503
        assert late.body["retry_after"] == pytest.approx(6.0)
        assert frontend.stats.shed == 2
        assert frontend.stats.shed_events == 1  # one episode, two 503s

        with frontend:  # drain the three admitted requests
            for ticket in accepted:
                assert ticket.result(10.0).status == 200

        # drained but not cooled down: still shedding
        still = frontend.submit(key, "/stats", arrival_time=9.0).result(0)
        assert still.status == 503

        # cooled down *and* drained: resume and accept
        ticket = frontend.submit(key, "/stats", arrival_time=10.0)
        assert not ticket.done()
        assert frontend.snapshot()["state"] == ACCEPTING
        assert frontend.stats.resumed == 1
        with frontend:
            assert ticket.result(10.0).status == 200

        snap = service.metrics.snapshot()
        assert snap["tenants"]["dash"]["shed"] == 3
        assert snap["totals"]["shed"] == 3

    def test_503_retry_after_raised_to_breaker_cooldown(self, service):
        frontend = ServingFrontend(service.gateway,
                                   tenants=(generous_tenant(),),
                                   workers=1, queue_depth=1,
                                   shed_cooldown=5.0,
                                   breaker_cooldown=lambda: 1234.0)
        frontend.submit("key-dash", "/stats", arrival_time=0.0)
        shed = frontend.submit("key-dash", "/stats", arrival_time=0.0)
        assert shed.result(0).body["retry_after"] == pytest.approx(1234.0)
        with frontend:
            pass  # drain the accepted request

    def test_constructor_validation(self, service):
        with pytest.raises(ValueError):
            ServingFrontend(service.gateway, workers=0)
        with pytest.raises(ValueError):
            ServingFrontend(service.gateway, queue_depth=0)


class TestWorkerPool:
    def test_responses_byte_identical_across_worker_counts(self, service):
        requests = build_workload(service)
        digests = {}
        for workers in (1, 2, 4):
            service.metrics.reset()
            frontend = service.frontend(tenants=[generous_tenant()],
                                        workers=workers)
            with frontend:
                tickets = [frontend.submit("key-dash", path, params,
                                           arrival_time=float(i))
                           for i, (path, params) in enumerate(requests)]
                records = [(i, t.result(30.0).status, t.result(30.0).json())
                           for i, t in enumerate(tickets)]
            assert all(status == 200 for _, status, _ in records), records
            digest = hashlib.sha256(repr(records).encode()).hexdigest()
            digests[workers] = digest
        assert len(set(digests.values())) == 1, digests

    def test_cold_cache_race_renders_once(self, conc_sanitizer):
        # built after the sanitizer installs so every lock is tracked
        service = build_serving_service()
        try:
            params = full_range(service)
            frontend = service.frontend(tenants=[generous_tenant()],
                                        workers=4)
            # queue 8 identical cold-cache scans, then release 4 workers
            # at once: the generation-stamped memo must compute once
            tickets = [frontend.submit("key-dash", "/sps/history",
                                       params, arrival_time=0.0)
                       for _ in range(8)]
            with frontend:
                bodies = {t.result(30.0).json() for t in tickets}
                statuses = {t.result(30.0).status for t in tickets}
            assert statuses == {200}
            assert len(bodies) == 1
            assert service.gateway.handlers._render_calls == 1
            stats = service.archive.cache_stats()
            assert stats["tables"]["sps"]["hits"] >= 1
        finally:
            service.close()

    def test_start_and_stop_are_idempotent(self, service):
        frontend = service.frontend(tenants=[generous_tenant()], workers=2)
        assert frontend.start() is frontend.start()
        frontend.stop()
        frontend.stop()
        # restartable after a stop
        ticket = frontend.submit("key-dash", "/stats")
        with frontend:
            assert ticket.result(10.0).status == 200

    def test_stop_drains_queued_requests(self, service):
        frontend = service.frontend(tenants=[generous_tenant()], workers=2)
        tickets = [frontend.submit("key-dash", "/stats", arrival_time=0.0)
                   for _ in range(10)]
        frontend.start()
        frontend.stop()
        assert all(t.done() for t in tickets)
        assert frontend.stats.served == 10

    def test_concurrent_submitters_all_get_served(self, service):
        frontend = service.frontend(tenants=[generous_tenant()], workers=4,
                                    queue_depth=1024)
        params = full_range(service)
        statuses = []
        lock = threading.Lock()
        barrier = threading.Barrier(6)

        def client(cid):
            barrier.wait()
            mine = []
            for i in range(20):
                response = frontend.request(
                    "key-dash", "/sps/history", params,
                    arrival_time=float(cid * 20 + i), timeout=30.0)
                mine.append(response.status)
            with lock:
                statuses.extend(mine)

        with frontend:
            threads = [threading.Thread(target=client, args=(cid,))
                       for cid in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert statuses == [200] * 120
        assert frontend.stats.served == 120


class TestTenantAccounting:
    def test_tenant_metrics_are_isolated(self, service):
        fast = generous_tenant("fast")
        slow = Tenant("slow", rate=1.0, burst=1.0)
        frontend = service.frontend(tenants=[fast, slow], workers=2)
        with frontend:
            for i in range(3):
                assert frontend.request("key-fast", "/stats",
                                        arrival_time=float(i)).status == 200
            assert frontend.request("key-slow", "/stats",
                                    arrival_time=0.0).status == 200
            assert frontend.request("key-slow", "/stats",
                                    arrival_time=0.0).status == 429
        snap = service.metrics.snapshot()
        assert snap["tenants"]["fast"]["requests"] == 3
        assert snap["tenants"]["fast"]["rate_limited"] == 0
        assert snap["tenants"]["fast"]["succeeded"] == 3
        assert snap["tenants"]["slow"]["requests"] == 2
        assert snap["tenants"]["slow"]["rate_limited"] == 1
        assert snap["tenants"]["slow"]["succeeded"] == 1
        assert (fast.admitted, fast.rejected) == (3, 0)
        assert (slow.admitted, slow.rejected) == (1, 1)

    def test_rejections_leave_latency_percentiles_alone(self, service):
        slow = Tenant("slow", rate=1.0, burst=1.0)
        frontend = service.frontend(tenants=[slow], workers=1)
        with frontend:
            assert frontend.request("key-slow", "/stats",
                                    arrival_time=0.0).status == 200
            for _ in range(5):
                assert frontend.request("key-slow", "/stats",
                                        arrival_time=0.0).status == 429
        route = service.metrics.route("/stats")
        assert route.requests == 6
        # 429s are counted but contribute no 0ms latency samples
        assert len(route.samples_ms) == 1

    def test_snapshot_shape(self, service):
        frontend = service.frontend(tenants=[generous_tenant()], workers=2)
        snap = frontend.snapshot()
        assert set(snap) == {"state", "queue_depth", "queue_limit",
                             "workers", "counters", "tenants"}
        assert snap["state"] == ACCEPTING
        assert snap["workers"] == 2
        assert snap["tenants"] == {"dash": {"admitted": 0, "rejected": 0}}
