"""Regression suite for the gateway's 500 envelope (satellite fix).

The pre-fix dispatcher resolved the route *outside* the error envelope:
a crash during route resolution (an unhashable path object blowing up
the dict probe) escaped with no Response and no metrics sample, and a
handler crash lost its route label.  Both stay pinned here.
"""


class TestPreResolutionCrash:
    def test_unhashable_path_yields_counted_500(self, service):
        gateway = service.gateway
        response = gateway.get(["sps", "history"])  # unhashable path
        assert response.status == 500
        assert response.body["exception"] == "TypeError"
        snap = service.metrics.snapshot()
        assert snap["routes"]["<unknown>"]["by_status"]["500"] == 1
        assert snap["routes"]["<unknown>"]["server_errors"] == 1
        assert snap["totals"]["requests"] == 1
        assert snap["totals"]["server_errors"] == 1

    def test_pre_resolution_crash_is_tenant_attributed(self, service):
        service.gateway.get(["boom"], tenant="probe")
        snap = service.metrics.snapshot()
        assert snap["tenants"]["probe"]["by_status"]["500"] == 1

    def test_envelope_body_is_json_able(self, service):
        response = service.gateway.get({"un": "hashable"}.keys())
        assert response.status == 500
        response.json()  # must serialize


class TestPostResolutionCrash:
    def test_handler_crash_keeps_its_route_label(self, service):
        gateway = service.gateway

        def boom(params):
            raise RuntimeError("handler exploded")

        gateway._routes["/boom"] = boom
        response = gateway.get("/boom")
        assert response.status == 500
        assert response.body["exception"] == "RuntimeError"
        snap = service.metrics.snapshot()
        assert snap["routes"]["/boom"]["server_errors"] == 1
        assert "<unknown>" not in snap["routes"]

    def test_missing_route_is_a_404_under_the_shared_label(self, service):
        response = service.gateway.get("/no/such/route")
        assert response.status == 404
        snap = service.metrics.snapshot()
        assert snap["routes"]["<unknown>"]["by_status"]["404"] == 1
        assert snap["routes"]["<unknown>"]["server_errors"] == 0
