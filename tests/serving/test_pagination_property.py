"""Property: paginated reads stay consistent while the archive is written.

The pagination cursor encodes the last row's sort position (time,
measure, dimensions), not an offset, so a walk that interleaves with
appends must never duplicate or skip a row: every row of the initial
snapshot appears exactly once, rows land in strictly increasing sort
order, and later-arriving rows may join the tail but can never shuffle
the pages already served.

The walk goes through a live 2-worker ServingFrontend while the main
thread writes between pages (and fires overlapping full scans), so the
property also exercises the cache-invalidation path under concurrency.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SPS_MEASURE

from .conftest import build_serving_service, full_range, generous_tenant


def _row_identity(row):
    return tuple(sorted(row.items()))


def _row_position(row):
    dims = tuple(sorted((k, v) for k, v in row.items()
                        if k not in ("time", "value")))
    return (row["time"], SPS_MEASURE, dims)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2**16), page_limit=st.integers(1, 7),
       writes_per_page=st.integers(0, 3))
def test_paginated_walk_consistent_under_interleaved_writes(
        seed, page_limit, writes_per_page):
    service = build_serving_service(samples=6)
    try:
        rng = random.Random(seed)
        pools = sorted(service.cloud.catalog.all_pools())
        params = full_range(service)
        # stretch the window so interleaved appends land inside it (they
        # may join the tail of the walk; they must never shuffle it)
        params["end"] = str(service.cloud.clock.now() + 1e7)
        # snapshot before the walk: these rows must all be served
        initial = service.gateway.get("/sps/history", dict(params))
        assert initial.status == 200
        initial_ids = {_row_identity(r) for r in initial.body["rows"]}

        frontend = service.frontend(tenants=[generous_tenant("walker")],
                                    workers=2, queue_depth=1024)
        seen = []
        background = []
        write_time = service.cloud.clock.now() + 60.0
        # finite write budget: with per-page writes outpacing a small
        # page_limit the tail would grow faster than the walk consumes
        # it and pagination would never terminate
        writes_left = writes_per_page * 4
        with frontend:
            token = None
            page_index = 0
            while True:
                page_params = dict(params, limit=str(page_limit))
                if token:
                    page_params["next_token"] = token
                response = frontend.request(
                    "key-walker", "/sps/history", page_params,
                    arrival_time=float(page_index), timeout=30.0)
                assert response.status == 200, response.body
                assert len(response.body["rows"]) <= page_limit
                seen.extend(response.body["rows"])
                token = response.body["next_token"]
                # overlap an unpaginated scan with the rest of the walk
                background.append(frontend.submit(
                    "key-walker", "/sps/history", dict(params),
                    arrival_time=float(page_index)))
                # interleave appends (change-point values so rows land)
                for _ in range(min(writes_per_page, writes_left)):
                    writes_left -= 1
                    itype, region, zone = rng.choice(pools)
                    service.archive.put_sps(itype, region, zone,
                                            score=rng.randint(0, 10),
                                            time=write_time)
                    write_time += 30.0
                if token is None:
                    break
                page_index += 1
            for ticket in background:
                assert ticket.result(30.0).status == 200

        identities = [_row_identity(r) for r in seen]
        assert len(identities) == len(set(identities)), "duplicate rows"
        assert initial_ids <= set(identities), "snapshot rows skipped"
        positions = [_row_position(r) for r in seen]
        assert positions == sorted(set(positions)), \
            "pages out of sort order"
    finally:
        service.close()
