"""Regressions for history-param validation and the /rounds/<date> route."""

from repro import ServiceConfig, SimulatedCloud, SpotLakeService
from repro.cloudsim import Catalog, InstanceFamily, Region
from repro.lake import lake_day

from .conftest import build_serving_service, full_range


def _lake_service(tmp_path, rounds: int = 3) -> SpotLakeService:
    """A small durable lake-mode service populated via real collections.

    ``bulk_backfill`` is refused in lake mode (it bypasses the round
    merger), so the cold tier is fed the faithful way: one
    ``collect_once`` per interval.  Uses the same tiny catalog as
    :func:`build_serving_service` to keep rounds sub-second.
    """
    families = [InstanceFamily("m9", "M", "general", ("large", "xlarge"))]
    regions = [Region("rg-one-1", "rg", 2)]
    cloud = SimulatedCloud(seed=3, catalog=Catalog(seed=1, families=families,
                                                   regions=regions))
    service = SpotLakeService(
        ServiceConfig(seed=3, lake=True,
                      data_dir=str(tmp_path / "lake-data")),
        cloud=cloud)
    clock = service.cloud.clock
    for _ in range(rounds):
        service.collect_once()
        clock.set(clock.now() + 1800.0)
    return service


class TestHistoryParamValidation:
    def test_unknown_parameter_is_a_400_listing_expected(self):
        service = build_serving_service()
        try:
            params = dict(full_range(service), instancetype="m9.large")
            response = service.gateway.get("/sps/history", params)
            assert response.status == 400
            message = response.body["error"]
            assert "'instancetype'" in message
            assert "expected any of:" in message
            for expected in ("'instance_type'", "'region'", "'zone'",
                             "'start'", "'end'", "'limit'", "'next_token'"):
                assert expected in message
        finally:
            service.close()

    def test_measure_is_not_a_sps_or_price_parameter(self):
        service = build_serving_service()
        try:
            params = dict(full_range(service), measure="sps")
            for route in ("/sps/history", "/price/history"):
                response = service.gateway.get(route, params)
                assert response.status == 400
                assert "'measure'" in response.body["error"]
            # ...while /advisor/history legitimately accepts it
            ok = service.gateway.get(
                "/advisor/history", dict(full_range(service),
                                         measure="savings"))
            assert ok.status == 200
        finally:
            service.close()

    def test_zone_filter_rejected_on_zoneless_advisor_route(self):
        service = build_serving_service()
        try:
            response = service.gateway.get(
                "/advisor/history", dict(full_range(service), zone="rg-one-1a"))
            assert response.status == 400
            assert "'zone'" in response.body["error"]
        finally:
            service.close()


class TestRoundsRoute:
    def test_404_without_a_lake_tier(self):
        service = build_serving_service()
        try:
            response = service.gateway.get("/rounds/2022-01-01")
            assert response.status == 404
            assert "no cold lake tier" in response.body["error"]
        finally:
            service.close()

    def test_bad_dates_and_params_are_400s(self, tmp_path):
        service = _lake_service(tmp_path, rounds=1)
        try:
            gateway = service.gateway
            for bad in ("2022/01/01", "2022-1-1", "yesterday", "20220101"):
                response = gateway.get(f"/rounds/{bad}")
                assert response.status == 400, bad
                assert "expected YYYY-MM-DD" in response.body["error"]
            response = gateway.get("/rounds/2022-01-01", {"page": "1"})
            assert response.status == 400
            assert "'page'" in response.body["error"]
        finally:
            service.close()

    def test_lists_rounds_and_pages_one_snapshot(self, tmp_path):
        service = _lake_service(tmp_path, rounds=3)
        try:
            lake = service.archive.lake
            times = lake.round_times()
            date = lake_day(times[0]).replace("/", "-")
            listing = service.gateway.get(f"/rounds/{date}")
            assert listing.status == 200
            assert listing.body["rounds"] == lake.rounds_on(date)
            assert listing.body["count"] == len(listing.body["rounds"])

            at = times[0]
            full = service.gateway.get(f"/rounds/{date}", {"at": str(at)})
            assert full.status == 200
            total = full.body["round"]["total"]
            assert total > 0
            assert full.body["round"]["time"] == at
            # pages tile the snapshot exactly
            walked = []
            for offset in range(0, total, 5):
                page = service.gateway.get(
                    f"/rounds/{date}",
                    {"at": str(at), "limit": "5", "offset": str(offset)})
                assert page.status == 200
                assert page.body["round"]["offset"] == offset
                walked.extend(page.body["round"]["rows"])
            assert walked == full.body["round"]["rows"]
        finally:
            service.close()

    def test_missing_round_time_is_a_404(self, tmp_path):
        service = _lake_service(tmp_path, rounds=1)
        try:
            times = service.archive.lake.round_times()
            date = lake_day(times[0]).replace("/", "-")
            response = service.gateway.get(f"/rounds/{date}",
                                           {"at": str(times[0] + 1.0)})
            assert response.status == 404
            assert "no archived round" in response.body["error"]
        finally:
            service.close()

    def test_route_label_is_shared_in_metrics(self, tmp_path):
        service = _lake_service(tmp_path, rounds=1)
        try:
            times = service.archive.lake.round_times()
            date = lake_day(times[0]).replace("/", "-")
            service.gateway.get(f"/rounds/{date}")
            service.gateway.get("/rounds/2021-12-25")
            snapshot = service.gateway.metrics.snapshot()
            routes = snapshot["routes"]
            assert "/rounds/<date>" in routes
            assert not any(r.startswith("/rounds/2") for r in routes)
        finally:
            service.close()
