"""Tests for the bin-packing solvers, including optimality properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.solver import (
    InfeasibleError,
    best_fit_decreasing,
    branch_and_bound,
    first_fit_decreasing,
    is_valid_packing,
    lower_bound_l1,
    lower_bound_l2,
    pack,
)

weights_strategy = st.lists(st.integers(min_value=1, max_value=10),
                            min_size=0, max_size=16)


class TestValidation:
    def test_oversized_item_infeasible(self):
        with pytest.raises(InfeasibleError):
            first_fit_decreasing([11], 10)

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ValueError):
            first_fit_decreasing([0], 10)

    def test_nonpositive_capacity_rejected(self):
        with pytest.raises(ValueError):
            first_fit_decreasing([1], 0)


class TestLowerBounds:
    def test_l1(self):
        assert lower_bound_l1([5, 5, 5], 10) == 2
        assert lower_bound_l1([], 10) == 0

    def test_l2_at_least_l1(self):
        weights = [6, 6, 6, 2, 2, 2]
        assert lower_bound_l2(weights, 10) >= lower_bound_l1(weights, 10)

    def test_l2_big_items(self):
        # three items > capacity/2 can never share bins
        assert lower_bound_l2([6, 6, 6], 10) == 3


class TestHeuristics:
    def test_ffd_known_case(self):
        bins = first_fit_decreasing([6, 4, 4, 3, 3], 10)
        assert is_valid_packing(bins, [6, 4, 4, 3, 3], 10)
        assert len(bins) == 2

    def test_bfd_known_case(self):
        bins = best_fit_decreasing([7, 5, 5, 3], 10)
        assert is_valid_packing(bins, [7, 5, 5, 3], 10)
        assert len(bins) == 2

    def test_empty(self):
        assert first_fit_decreasing([], 10) == []
        assert branch_and_bound([], 10).bins == []


class TestExact:
    def test_beats_or_ties_ffd_on_hard_case(self):
        # FFD is suboptimal here: optimal is 3 bins
        weights = [4, 4, 4, 4, 4, 4, 3, 3, 3, 3, 3, 3]
        result = branch_and_bound(weights, 12)
        assert is_valid_packing(result.bins, weights, 12)
        assert len(result.bins) <= len(first_fit_decreasing(weights, 12))
        if result.optimal:
            assert len(result.bins) >= result.lower_bound

    def test_reports_node_count(self):
        result = branch_and_bound([5, 5, 5, 5], 10)
        assert result.nodes_explored > 0

    def test_budget_falls_back_gracefully(self):
        weights = [3, 4, 5, 6, 7] * 4
        result = branch_and_bound(weights, 10, node_budget=10)
        assert is_valid_packing(result.bins, weights, 10)


class TestPack:
    def test_exact_default(self):
        bins = pack([5, 5, 5, 5], 10)
        assert len(bins) == 2

    def test_heuristic_mode(self):
        bins = pack([5, 5, 5, 5], 10, exact=False)
        assert is_valid_packing(bins, [5, 5, 5, 5], 10)


class TestProperties:
    @given(weights_strategy)
    @settings(max_examples=120, deadline=None)
    def test_exact_packing_valid_and_bounded(self, weights):
        result = branch_and_bound(weights, 10)
        assert is_valid_packing(result.bins, weights, 10)
        assert len(result.bins) >= lower_bound_l1(weights, 10)
        assert len(result.bins) <= len(first_fit_decreasing(weights, 10))

    @given(weights_strategy)
    @settings(max_examples=120, deadline=None)
    def test_exact_optimal_when_claimed(self, weights):
        result = branch_and_bound(weights, 10)
        if result.optimal:
            assert len(result.bins) >= lower_bound_l2(weights, 10)

    @given(weights_strategy)
    @settings(max_examples=80, deadline=None)
    def test_heuristics_valid(self, weights):
        for solver in (first_fit_decreasing, best_fit_decreasing):
            assert is_valid_packing(solver(weights, 10), weights, 10)
