"""v2 binary columnar segments: round trips, zone maps, column packing."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.storage import (
    ColumnarFormatError,
    CorruptSegmentError,
    SegmentCursor,
    encode_segment,
    read_segment,
    scan_segment,
    write_segment,
)
from repro.timeseries.compression import (
    ChangePointSeries,
    pack_index_column,
    pack_time_column,
    unpack_time_column,
    unpack_value_column,
)
from repro.timeseries.record import SeriesKey


def build_items(points=40, series_count=3):
    """Mixed-type series: floats, ints, bools, strings and NaN."""
    items = []
    for s in range(series_count):
        key = SeriesKey("m", (("az", f"az-{s}"), ("it", f"t{s}.large")))
        times, values = [], []
        for i in range(points):
            times.append(float(s * 10000 + i * 30))
            cycle = (i + s) % 5
            values.append([1.25 + i, i, bool(i % 2), f"bucket-{i % 7}",
                           float("nan")][cycle])
        items.append((key, ChangePointSeries(
            times=times, values=values, observed_until=times[-1] + 30.0,
            observation_count=points * 2)))
    items.sort(key=lambda kv: (kv[0].measure_name, kv[0].dimensions))
    return items


def norm(pairs):
    """repr-normalize so NaN compares equal and 1 / 1.0 / True do not."""
    return [(key, [(t, type(v).__name__, repr(v))
                   for t, v in zip(s.times, s.values)],
             s.observed_until, s.observation_count) for key, s in pairs]


class TestEncodeDecode:
    def test_round_trip_preserves_types_and_nan(self):
        items = build_items()
        cursor = SegmentCursor(encode_segment("t", 3, 1, items))
        assert norm(cursor.items()) == norm(items)

    def test_encoding_is_deterministic(self):
        items = build_items()
        assert encode_segment("t", 3, 1, items) == \
            encode_segment("t", 3, 1, items)

    def test_chunking_does_not_change_content(self):
        items = build_items(points=100)
        small = SegmentCursor(encode_segment("t", 1, 0, items,
                                             chunk_points=7))
        big = SegmentCursor(encode_segment("t", 1, 0, items,
                                           chunk_points=10000))
        assert norm(small.items()) == norm(big.items())

    def test_empty_segment_round_trips(self):
        cursor = SegmentCursor(encode_segment("t", 1, 0, []))
        assert cursor.items() == []
        assert cursor.time_bounds() is None

    def test_time_bounds_come_from_zone_maps(self):
        items = build_items(points=10)
        cursor = SegmentCursor(encode_segment("t", 1, 0, items))
        t_all = [t for _, s in items for t in s.times]
        assert cursor.time_bounds() == (min(t_all), max(t_all))


class TestZoneMapScan:
    @pytest.mark.parametrize("chunk_points", [4, 16, 512])
    def test_scan_matches_naive_filter(self, chunk_points):
        items = build_items(points=60)
        cursor = SegmentCursor(encode_segment("t", 1, 0, items,
                                              chunk_points=chunk_points))
        for window in [(-1.0, 1e9), (100.0, 900.0), (10030.0, 10030.0),
                       (5e8, 6e8), (-50.0, -1.0)]:
            start, end = window
            want = []
            for key, series in items:
                rows = [(t, v) for t, v in zip(series.times, series.values)
                        if start <= t <= end]
                if rows:
                    want.append((key, rows))

            def rows_norm(result):
                return [(k, [(t, type(v).__name__, repr(v)) for t, v in r])
                        for k, r in result]

            assert rows_norm(cursor.scan(start, end)) == rows_norm(want)

    def test_out_of_range_chunks_are_never_decoded(self, monkeypatch):
        items = build_items(points=64)
        cursor = SegmentCursor(encode_segment("t", 1, 0, items,
                                              chunk_points=8))
        decoded = []
        original = SegmentCursor._chunk_columns

        def counting(self, chunk):
            decoded.append(chunk)
            return original(self, chunk)

        monkeypatch.setattr(SegmentCursor, "_chunk_columns", counting)
        cursor.scan(0.0, 120.0)  # first series only, first chunk or two
        total_chunks = sum(len(d["ch"]) for d in cursor.header["desc"])
        assert 0 < len(decoded) < total_chunks


class TestCorruption:
    def test_bad_magic_rejected(self):
        with pytest.raises(ColumnarFormatError, match="magic"):
            SegmentCursor(b"NOTASEGMENT....")

    def test_truncated_header_rejected(self):
        raw = encode_segment("t", 1, 0, build_items())
        with pytest.raises(ColumnarFormatError):
            SegmentCursor(raw[:10])

    def test_truncated_body_rejected(self):
        raw = encode_segment("t", 1, 0, build_items(points=200))
        with pytest.raises(ColumnarFormatError):
            SegmentCursor(raw[: len(raw) // 2]).items()

    def test_truncated_file_surfaces_as_corrupt_segment(self, tmp_path):
        meta = write_segment(tmp_path, 1, "t", 0, build_items(points=200))
        path = tmp_path / meta.file
        path.write_bytes(path.read_bytes()[: meta.bytes // 2])
        with pytest.raises(CorruptSegmentError):
            read_segment(tmp_path, meta, verify=False)
        with pytest.raises(CorruptSegmentError):
            scan_segment(tmp_path, meta)


class TestFileScan:
    @pytest.mark.parametrize("use_mmap", [True, False])
    def test_scan_segment_windows(self, tmp_path, use_mmap):
        items = build_items(points=50)
        meta = write_segment(tmp_path, 1, "t", 0, items)
        got = scan_segment(tmp_path, meta, 0.0, 600.0, use_mmap=use_mmap)
        want = [(key, series.change_points(0.0, 600.0))
                for key, series in items
                if series.change_points(0.0, 600.0)]
        assert [(k, [(t, repr(v)) for t, v in r]) for k, r in got] == \
            [(k, [(t, repr(v)) for t, v in r]) for k, r in want]

    def test_scan_segment_verify_checks_checksum(self, tmp_path):
        meta = write_segment(tmp_path, 1, "t", 0, build_items())
        path = tmp_path / meta.file
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(CorruptSegmentError, match="checksum"):
            scan_segment(tmp_path, meta, verify=True)


class TestColumnPrimitives:
    @given(st.lists(st.integers(min_value=0, max_value=10 ** 6), min_size=0,
                    max_size=50))
    def test_regular_cadence_times_round_trip(self, deltas):
        times, t = [], 1.7e9
        for d in deltas:
            t += d
            times.append(float(t))
        assert unpack_time_column(pack_time_column(times)) == times

    @given(st.lists(st.floats(min_value=0, max_value=1e12,
                              allow_nan=False), min_size=1, max_size=50))
    def test_arbitrary_float_times_round_trip(self, times):
        times = sorted(times)
        assert unpack_time_column(pack_time_column(times)) == times

    def test_fractional_times_fall_back_to_raw_floats(self):
        times = [0.1, 0.30000000000000004, 1e17 + 0.5]
        blob = pack_time_column(times)
        assert blob[:1] == b"F"
        assert unpack_time_column(blob) == times

    def test_integral_deltas_pack_narrow(self):
        blob = pack_time_column([1000.0, 1300.0, 1600.0])
        assert blob[:1] == b"2"  # int16 deltas: 1 + 8 + 2 * 2 bytes
        assert len(blob) == 13

    @given(st.lists(st.integers(min_value=0, max_value=70000), min_size=0,
                    max_size=50))
    def test_index_columns_round_trip_at_narrowest_width(self, indices):
        blob = pack_index_column(indices)
        is_indices, got = unpack_value_column(blob)
        assert is_indices and got == indices
        top = max(indices, default=0)
        assert blob[:1] == (b"u" if top < 256 else
                            b"v" if top < 65536 else b"w")

    def test_unknown_tags_rejected(self):
        with pytest.raises(ValueError, match="tag"):
            unpack_time_column(b"zjunk")
        with pytest.raises(ValueError, match="tag"):
            unpack_value_column(b"zjunk")
