"""Crash injection units + the full kill/restart durability matrix."""

import pytest

from repro.cloudsim import (
    CrashInjector,
    CrashPoint,
    SimulatedCrash,
    seeded_crash_point,
)
from repro.devtools.doublerun import durability_run
from repro.storage import CRASH_WINDOWS

from tests.chaos.conftest import build_tiny_cloud


class TestCrashInjector:
    def test_before_fires_only_at_matching_hit(self):
        injector = CrashInjector([CrashPoint("wal.commit", hit=2)])
        injector.before("wal.commit")
        injector.before("wal.commit")
        with pytest.raises(SimulatedCrash) as excinfo:
            injector.before("wal.commit")
        assert excinfo.value.window == "wal.commit"
        assert excinfo.value.hit == 2
        assert len(injector.fired) == 1

    def test_hit_counters_are_per_window(self):
        injector = CrashInjector([CrashPoint("checkpoint.gc", hit=0)])
        injector.before("wal.commit")  # other windows do not consume hits
        injector.before("checkpoint.segments")
        with pytest.raises(SimulatedCrash):
            injector.before("checkpoint.gc")

    def test_torn_write_returns_prefix_then_crashes(self):
        injector = CrashInjector([CrashPoint("wal.flush", hit=1,
                                             torn_fraction=0.25)])
        assert injector.torn_write("wal.flush", 100) is None  # hit 0
        assert injector.torn_write("wal.flush", 100) == 25    # hit 1
        with pytest.raises(SimulatedCrash):
            injector.crash("wal.flush")
        assert injector.fired[-1].torn_bytes == 25

    def test_torn_fraction_clamped_to_batch(self):
        injector = CrashInjector([CrashPoint("wal.flush", hit=0,
                                             torn_fraction=2.0)])
        assert injector.torn_write("wal.flush", 10) == 10

    def test_unarmed_injector_is_a_noop(self):
        injector = CrashInjector()
        for window in CRASH_WINDOWS:
            injector.before(window)
            assert injector.torn_write(window, 100) is None
        assert injector.fired == []


class TestSeededCrashPoint:
    def test_deterministic_in_seed_and_window(self):
        a = seeded_crash_point(7, "wal.flush", 10)
        b = seeded_crash_point(7, "wal.flush", 10)
        assert a == b
        assert 0 <= a.hit < 10
        assert 0.0 <= a.torn_fraction < 1.0

    def test_windows_get_distinct_schedules(self):
        points = [seeded_crash_point(0, w, 1000) for w in CRASH_WINDOWS]
        assert len({p.hit for p in points}) > 1

    def test_max_hits_floor(self):
        assert seeded_crash_point(0, "wal.flush", 0).hit == 0


class TestDurabilityMatrix:
    """Kill the collection service at every crash window; the recovered
    archive must be byte-identical to an uninterrupted run at however
    many rounds recovery reports as committed (the acceptance gate)."""

    def test_every_window_recovers_byte_identical(self):
        result = durability_run(rounds=2, checkpoint_every=1,
                                instance_types=None,
                                cloud_factory=build_tiny_cloud)
        assert len(result.cases) == len(CRASH_WINDOWS)
        for case in result.cases:
            assert case.crashed, f"{case.window} never fired"
            assert case.identical, case.summary()
        assert result.identical

    def test_durability_under_chaos_faults(self):
        # gap records and retry bookkeeping ride the WAL like any write
        result = durability_run(rounds=2, checkpoint_every=1,
                                instance_types=None,
                                chaos_profile="moderate", chaos_seed=3,
                                cloud_factory=build_tiny_cloud)
        assert result.identical, result.summary()

    def test_wal_crash_loses_at_most_the_inflight_round(self):
        result = durability_run(rounds=3, checkpoint_every=2,
                                instance_types=None,
                                cloud_factory=build_tiny_cloud)
        by_window = {case.window: case for case in result.cases}
        flush = by_window["wal.flush"]
        assert flush.rounds_recovered >= flush.hit  # only round hit+1 lost
        commit = by_window["wal.commit"]
        # the batch is durable before wal.commit fires: nothing is lost
        assert commit.rounds_recovered == commit.hit + 1
