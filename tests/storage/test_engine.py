"""StorageEngine end-to-end: log-then-apply, checkpoint, recover, restart."""

import hashlib

import pytest

from repro.storage import StorageEngine, recover
from repro.storage.wal import wal_file_name
from repro.timeseries import (
    Record,
    RetentionPolicy,
    TimeSeriesStore,
    dump_store,
)


def digests(store, directory):
    dump_store(store, directory)
    return {p.name: hashlib.sha256(p.read_bytes()).hexdigest()
            for p in sorted(directory.glob("*.jsonl"))}


def assert_stores_identical(tmp_path, a, b):
    dir_a = tmp_path / "digest-a"
    dir_b = tmp_path / "digest-b"
    dir_a.mkdir(), dir_b.mkdir()
    assert digests(a, dir_a) == digests(b, dir_b)


def build_engine(data_dir, **kwargs):
    kwargs.setdefault("tier_fanout", 2)
    engine = StorageEngine(data_dir, **kwargs)
    store = engine.recovered.store
    engine.attach(store)
    return engine, store


def write(engine, store, table, value, time, series="s0"):
    record = Record.make({"k": series}, "m", value, time)
    engine.log_record(table, record)
    store.table(table).write(record)


def create_table(engine, store, name, policy=None):
    engine.log_create_table(name, policy)
    store.create_table(name, policy)


def run_rounds(engine, store, rounds, per_round=3, start_round=0,
               checkpoint_every=0):
    for r in range(start_round, start_round + rounds):
        t0 = r * 100.0
        for i in range(per_round):
            write(engine, store, "t", (r + i) % 3, t0 + i,
                  series=f"s{i % 2}")
        engine.commit_round(t0 + per_round)
        if checkpoint_every and engine.rounds_committed % checkpoint_every == 0:
            engine.checkpoint(t0 + per_round)


class TestRecoveryParity:
    def test_wal_only_recovery_is_byte_identical(self, tmp_path):
        data = tmp_path / "data"
        engine, store = build_engine(data)
        create_table(engine, store, "t")
        run_rounds(engine, store, 3)
        engine.close()
        state = recover(data)
        assert state.rounds_committed == 3
        assert not state.data_loss
        assert_stores_identical(tmp_path, store, state.store)

    def test_checkpointed_recovery_is_byte_identical(self, tmp_path):
        data = tmp_path / "data"
        engine, store = build_engine(data)
        create_table(engine, store, "t")
        run_rounds(engine, store, 6, checkpoint_every=2)
        engine.close()
        state = recover(data)
        assert state.rounds_committed == 6
        assert_stores_identical(tmp_path, store, state.store)
        # the checkpoints garbage-collected every superseded WAL file
        wal_files = [p.name for p in data.glob("wal-*.log")]
        assert wal_files == [wal_file_name(engine.manifest.next_wal_number)]

    def test_recovery_is_idempotent(self, tmp_path):
        data = tmp_path / "data"
        engine, store = build_engine(data)
        create_table(engine, store, "t")
        run_rounds(engine, store, 4, checkpoint_every=3)
        engine.close()
        assert_stores_identical(tmp_path, recover(data).store,
                                recover(data).store)

    def test_fresh_directory_recovers_empty(self, tmp_path):
        state = recover(tmp_path)
        assert state.store.table_names() == []
        assert state.rounds_committed == 0
        assert not state.data_loss

    def test_uncommitted_round_discarded(self, tmp_path):
        data = tmp_path / "data"
        engine, store = build_engine(data)
        create_table(engine, store, "t")
        run_rounds(engine, store, 2)
        reference = recover(data)  # state as of round 2
        write(engine, store, "t", 9, 999.0)  # in-flight, never committed
        engine.close()
        state = recover(data)
        assert state.rounds_committed == 2
        assert_stores_identical(tmp_path, reference.store, state.store)


class TestRetentionDurability:
    def test_policy_round_trips_through_recovery(self, tmp_path):
        data = tmp_path / "data"
        engine, store = build_engine(data)
        create_table(engine, store, "t", RetentionPolicy(150.0))
        run_rounds(engine, store, 2, checkpoint_every=1)
        engine.close()
        state = recover(data)
        assert state.store.policy("t").max_age_seconds == 150.0

    def test_eviction_replayed_from_wal_tail(self, tmp_path):
        data = tmp_path / "data"
        engine, store = build_engine(data)
        create_table(engine, store, "t")
        run_rounds(engine, store, 3)
        table = store.table("t")
        engine.log_eviction("t", 150.0, table.series_keys())
        table.evict_before(150.0)
        engine.commit_round(400.0)
        engine.close()
        state = recover(data)
        assert_stores_identical(tmp_path, store, state.store)

    def test_eviction_survives_wal_garbage_collection(self, tmp_path):
        # evict, then checkpoint (GC's the evict op); evicted_through in
        # the manifest must preserve its effect for the next recovery
        data = tmp_path / "data"
        engine, store = build_engine(data)
        create_table(engine, store, "t")
        run_rounds(engine, store, 3)
        table = store.table("t")
        engine.log_eviction("t", 150.0, table.series_keys())
        table.evict_before(150.0)
        engine.commit_round(400.0)
        engine.checkpoint(400.0)
        assert engine.manifest.tables["t"].evicted_through == 150.0
        engine.close()
        state = recover(data)
        assert_stores_identical(tmp_path, store, state.store)


class TestRestart:
    def test_restart_continues_the_log(self, tmp_path):
        data = tmp_path / "data"
        engine, store = build_engine(data)
        create_table(engine, store, "t")
        run_rounds(engine, store, 3, checkpoint_every=2)
        engine.close()

        engine2, store2 = build_engine(data)
        assert engine2.rounds_committed == 3
        run_rounds(engine2, store2, 2, start_round=3, checkpoint_every=2)
        engine2.close()
        state = recover(data)
        assert state.rounds_committed == 5
        assert_stores_identical(tmp_path, store2, state.store)

    def test_restart_preserves_records_written_counter(self, tmp_path):
        data = tmp_path / "data"
        engine, store = build_engine(data)
        create_table(engine, store, "t")
        run_rounds(engine, store, 2, checkpoint_every=1)
        written = store.table("t").stats.records_written
        engine.close()
        _, store2 = build_engine(data)
        assert store2.table("t").stats.records_written == written


class TestEngineContract:
    def test_templated_wal_lines_match_canonical_encoding(self, tmp_path):
        """log_record's per-series template splice must emit the exact
        bytes encode_record would (the fast path is invisible on disk)."""
        from repro.storage.wal import encode_record

        engine, store = build_engine(tmp_path / "data")
        create_table(engine, store, "t")
        records = [
            Record.make({"az": "a", "it": "m5.large"}, "sps", 3, 100.0),
            Record.make({"az": "a", "it": "m5.large"}, "sps", 2, 160.5),
            Record.make({"b": "x"}, "price", 0.123, 7.0),
            Record.make({"b": "x"}, "price", True, 8.0),  # slow path
            Record.make({"b": "x"}, "price", "s", 9.0),   # slow path
        ]
        base_seq = engine._writer.next_seq
        for record in records:
            engine.log_record("t", record)
            store.table("t").write(record)
        canonical = [
            encode_record(base_seq + i, {
                "op": "write", "table": "t",
                "measure": r.measure_name, "dims": r.dimension_dict,
                "value": r.value, "time": r.time})
            for i, r in enumerate(records)]
        assert list(engine._writer._buffer)[-len(records):] == canonical
        engine.commit_round(10.0)
        engine.close()

    def test_dirty_tracking_survives_checkpoint_with_cached_series(
            self, tmp_path):
        """The template cache holds references to per-table dirty sets;
        a checkpoint must clear them in place so post-checkpoint writes
        to already-cached series still reach the next flush."""
        data = tmp_path / "data"
        engine, store = build_engine(data)
        create_table(engine, store, "t")
        write(engine, store, "t", 1, 0.0)
        engine.commit_round(1.0)
        engine.checkpoint(1.0)
        # same series again: cached template, must re-mark dirty
        write(engine, store, "t", 2, 10.0)
        engine.commit_round(11.0)
        manifest = engine.checkpoint(11.0)
        assert len(manifest.tables["t"].segments) >= 1
        engine.close()
        state = recover(data)
        assert_stores_identical(tmp_path, store, state.store)

    def test_checkpoint_rejects_uncommitted_batch(self, tmp_path):
        engine, store = build_engine(tmp_path / "data")
        create_table(engine, store, "t")
        write(engine, store, "t", 1, 0.0)
        with pytest.raises(RuntimeError, match="round boundary"):
            engine.checkpoint(0.0)

    def test_detached_store_rejected(self, tmp_path):
        engine = StorageEngine(tmp_path / "data")
        with pytest.raises(RuntimeError, match="no attached store"):
            engine.store

    def test_compaction_keeps_levels_slim(self, tmp_path):
        data = tmp_path / "data"
        engine, store = build_engine(data, tier_fanout=2)
        create_table(engine, store, "t")
        run_rounds(engine, store, 8, checkpoint_every=1)
        by_level = {}
        for meta in engine.manifest.tables["t"].segments:
            by_level.setdefault(meta.level, []).append(meta)
        assert all(len(metas) < 2 for metas in by_level.values())
        assert engine.compaction_stats.merges > 0
        engine.close()
        state = recover(data)
        assert_stores_identical(tmp_path, store, state.store)

    def test_stats_payload(self, tmp_path):
        engine, store = build_engine(tmp_path / "data")
        create_table(engine, store, "t")
        run_rounds(engine, store, 2, checkpoint_every=1)
        stats = engine.stats()
        assert stats["rounds_committed"] == 2
        assert stats["checkpoints"] == 2
        assert stats["wal_records_written"] > 0
        assert stats["live_segment_bytes"] > 0
        assert stats["write_amplification"] > 0.0
