"""Mixed v1/v2 data directories: recovery, in-place migration, crashes."""

import hashlib

from repro.devtools.doublerun import durability_run
from repro.storage import (
    CRASH_WINDOWS,
    StorageEngine,
    forced_segment_format,
    load_manifest,
    recover,
    store_manifest,
    write_segment,
)
from repro.timeseries import ChangePointSeries, Record, dump_store
from repro.timeseries.record import SeriesKey

from tests.chaos.conftest import build_tiny_cloud


def digests(store, directory):
    dump_store(store, directory)
    return {p.name: hashlib.sha256(p.read_bytes()).hexdigest()
            for p in sorted(directory.glob("*.jsonl"))}


def assert_stores_identical(tmp_path, a, b):
    dir_a = tmp_path / "digest-a"
    dir_b = tmp_path / "digest-b"
    dir_a.mkdir(), dir_b.mkdir()
    assert digests(a, dir_a) == digests(b, dir_b)


def build_engine(data_dir, **kwargs):
    kwargs.setdefault("tier_fanout", 2)
    engine = StorageEngine(data_dir, **kwargs)
    store = engine.recovered.store
    engine.attach(store)
    return engine, store


def run_rounds(engine, store, rounds, start_round=0, checkpoint=True):
    for r in range(start_round, start_round + rounds):
        t0 = r * 100.0
        for i in range(3):
            record = Record.make({"k": f"s{i % 2}"}, "m", (r + i) % 3,
                                 t0 + i)
            engine.log_record("t", record)
            store.table("t").write(record)
        engine.commit_round(t0 + 3)
        if checkpoint:
            engine.checkpoint(t0 + 3)


def seed_legacy_directory(data_dir, rounds=3):
    """A data directory exactly as a pre-columnar build left it."""
    with forced_segment_format(1):
        engine, store = build_engine(data_dir)
        engine.log_create_table("t", None)
        store.create_table("t", None)
        run_rounds(engine, store, rounds)
        engine.close()
    return store


class TestMixedDirectoryRecovery:
    def test_pure_legacy_directory_recovers_byte_identical(self, tmp_path):
        data = tmp_path / "data"
        live = seed_legacy_directory(data)
        manifest = load_manifest(data)
        assert set(manifest.format_census()) == {1}
        state = recover(data)
        assert_stores_identical(tmp_path, live, state.store)

    def test_mixed_directory_recovers_byte_identical(self, tmp_path):
        # v1 segments from an old build plus a newer v2 segment published
        # on top (the state an upgrade leaves between checkpoints): the
        # reader must dispatch per segment and newest-wins must hold
        # across formats
        data = tmp_path / "data"
        live = seed_legacy_directory(data)
        manifest = load_manifest(data)
        key = SeriesKey("m", (("k", "s0"),))
        newer = ChangePointSeries(times=[10_000.0], values=[9],
                                  observed_until=10_000.0,
                                  observation_count=1)
        meta = write_segment(data, manifest.next_segment_id, "t", 0,
                             [(key, newer)])
        assert meta.format == 2
        manifest.tables["t"].segments.append(meta)
        manifest.next_segment_id += 1
        manifest.version += 1
        store_manifest(data, manifest)

        assert set(load_manifest(data).format_census()) == {1, 2}
        state = recover(data)
        recovered = state.store.table("t")
        # the v2 segment (higher id) shadows the legacy series wholesale
        assert recovered.series(key).values == [9]
        # every other series still comes from the v1 segments untouched
        for other in live.table("t").series_keys():
            if other != key:
                assert recovered.series(other).values == \
                    live.table("t").series(other).values

    def test_checkpoint_migrates_legacy_segments_in_place(self, tmp_path):
        data = tmp_path / "data"
        seed_legacy_directory(data)
        engine, store = build_engine(data)
        run_rounds(engine, store, 1, start_round=3)
        # every surviving segment is now v2, and the migration kept ids
        assert set(engine.manifest.format_census()) == {2}
        assert engine.stats()["segments_migrated"] + \
            engine.compaction_stats.merges > 0
        leftovers = [p.name for p in data.glob("seg-*.jsonl")]
        assert leftovers == []  # old v1 files were garbage-collected
        engine.close()
        state = recover(data)
        assert_stores_identical(tmp_path, store, state.store)

    def test_migration_survives_reopen_without_new_writes(self, tmp_path):
        data = tmp_path / "data"
        live = seed_legacy_directory(data)
        state_before = recover(data)
        engine, store = build_engine(data)
        run_rounds(engine, store, 1, start_round=3)
        engine.close()
        state_after = recover(data)
        # migrated directory still contains everything the legacy one did
        assert_stores_identical(tmp_path, live, state_before.store)
        for key in live.table("t").series_keys():
            assert state_after.store.table("t").series(key).times[:1] == \
                live.table("t").series(key).times[:1]


class TestMixedFormatCrashMatrix:
    def test_crash_mid_migration_recovers_byte_identical(self):
        result = durability_run(rounds=2, checkpoint_every=1,
                                instance_types=None,
                                legacy_format_rounds=1,
                                cloud_factory=build_tiny_cloud)
        assert len(result.cases) == len(CRASH_WINDOWS)
        for case in result.cases:
            assert case.crashed, f"{case.window} never fired"
            assert case.identical, case.summary()
        assert result.identical
