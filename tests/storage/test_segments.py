"""Segment files and the MANIFEST: round trips, validation, atomicity."""

import json

import pytest

from repro.cloudsim import CrashInjector, CrashPoint, SimulatedCrash
from repro.storage import (
    CorruptSegmentError,
    MANIFEST_NAME,
    Manifest,
    SegmentMeta,
    TableManifest,
    load_manifest,
    read_segment,
    store_manifest,
    write_segment,
)
from repro.timeseries import Record, Table
from repro.timeseries.record import SeriesKey


def build_items(count=3):
    table = Table("t")
    for i in range(count):
        for t in range(4):
            table.write(Record.make({"k": f"s{i}"}, "m", (t % 2) + i,
                                    float(t * 10)))
    return [(key, table.series(key)) for key in table.series_keys()]


class TestSegmentFiles:
    def test_write_read_round_trip(self, tmp_path):
        items = build_items()
        meta = write_segment(tmp_path, 1, "t", 0, items)
        assert meta.series == len(items)
        assert meta.file == "seg-00000001-t-L0.jsonl"
        loaded = read_segment(tmp_path, meta)
        assert [key for key, _ in loaded] == [key for key, _ in items]
        for (_, got), (_, want) in zip(loaded, items):
            assert got.times == want.times
            assert got.values == want.values
            assert got.observed_until == want.observed_until
            assert got.observation_count == want.observation_count

    def test_dimension_order_is_canonical(self, tmp_path):
        key = SeriesKey("m", (("a", "1"), ("b", "2")))
        table = Table("t")
        table.write(Record.make({"b": "2", "a": "1"}, "m", 5, 0.0))
        items = [(key, table.series(key))]
        meta = write_segment(tmp_path, 1, "t", 0, items)
        [(loaded_key, _)] = read_segment(tmp_path, meta)
        assert loaded_key == key

    def test_checksum_mismatch_detected(self, tmp_path):
        meta = write_segment(tmp_path, 1, "t", 0, build_items())
        path = tmp_path / meta.file
        path.write_bytes(path.read_bytes().replace(b'"m"', b'"x"', 1))
        with pytest.raises(CorruptSegmentError, match="checksum"):
            read_segment(tmp_path, meta)

    def test_missing_file_detected(self, tmp_path):
        meta = write_segment(tmp_path, 1, "t", 0, build_items())
        (tmp_path / meta.file).unlink()
        with pytest.raises(CorruptSegmentError, match="missing"):
            read_segment(tmp_path, meta)

    def test_header_mismatch_detected(self, tmp_path):
        meta = write_segment(tmp_path, 1, "t", 0, build_items())
        other = SegmentMeta(meta.file, meta.segment_id, "other", meta.level,
                            meta.series, meta.bytes, meta.sha256)
        with pytest.raises(CorruptSegmentError, match="header"):
            read_segment(tmp_path, other)

    def test_no_temp_files_left_behind(self, tmp_path):
        write_segment(tmp_path, 1, "t", 0, build_items())
        assert [p.name for p in tmp_path.iterdir()] == \
            ["seg-00000001-t-L0.jsonl"]


def build_manifest(tmp_path):
    meta = write_segment(tmp_path, 1, "sps", 0, build_items())
    return Manifest(
        version=3, last_applied_seq=17, rounds_committed=4,
        last_commit_time=1234.5, next_segment_id=2, next_wal_number=2,
        tables={"sps": TableManifest(retention=3600.0, records_written=12,
                                     evicted_through=100.0,
                                     segments=[meta])})


class TestManifest:
    def test_store_load_round_trip(self, tmp_path):
        manifest = build_manifest(tmp_path)
        store_manifest(tmp_path, manifest)
        loaded = load_manifest(tmp_path)
        assert loaded.as_dict() == manifest.as_dict()
        assert loaded.live_files() == ["seg-00000001-sps-L0.jsonl"]
        assert loaded.live_bytes() == manifest.tables["sps"].segments[0].bytes

    def test_fresh_directory_has_no_manifest(self, tmp_path):
        assert load_manifest(tmp_path) is None

    def test_unsupported_format_rejected(self, tmp_path):
        store_manifest(tmp_path, Manifest())
        path = tmp_path / MANIFEST_NAME
        raw = json.loads(path.read_text())
        raw["format"] = 99
        path.write_text(json.dumps(raw))
        with pytest.raises(ValueError, match="format"):
            load_manifest(tmp_path)

    def test_crash_before_publish_keeps_old_version(self, tmp_path):
        old = build_manifest(tmp_path)
        store_manifest(tmp_path, old)
        new = build_manifest(tmp_path)
        new.version = 4
        hook = CrashInjector([CrashPoint("checkpoint.manifest", hit=0)])
        with pytest.raises(SimulatedCrash):
            store_manifest(tmp_path, new, hook)
        assert load_manifest(tmp_path).version == 3  # old manifest intact

    def test_crash_after_publish_shows_new_version(self, tmp_path):
        store_manifest(tmp_path, build_manifest(tmp_path))
        new = build_manifest(tmp_path)
        new.version = 4
        hook = CrashInjector([CrashPoint("checkpoint.publish", hit=0)])
        with pytest.raises(SimulatedCrash):
            store_manifest(tmp_path, new, hook)
        assert load_manifest(tmp_path).version == 4
