"""Segment files and the MANIFEST: round trips, validation, atomicity."""

import json
from pathlib import Path

import pytest

from repro.cloudsim import CrashInjector, CrashPoint, SimulatedCrash
from repro.storage import (
    CorruptSegmentError,
    MANIFEST_NAME,
    Manifest,
    SegmentMeta,
    TableManifest,
    forced_segment_format,
    load_manifest,
    read_segment,
    sanitize_table_component,
    scan_segment,
    segment_file_name,
    store_manifest,
    write_segment,
)
from repro.storage import segments as segments_module
from repro.timeseries import Record, Table
from repro.timeseries.record import SeriesKey


def build_items(count=3):
    table = Table("t")
    for i in range(count):
        for t in range(4):
            table.write(Record.make({"k": f"s{i}"}, "m", (t % 2) + i,
                                    float(t * 10)))
    return [(key, table.series(key)) for key in table.series_keys()]


class TestSegmentFiles:
    def test_write_read_round_trip(self, tmp_path):
        items = build_items()
        meta = write_segment(tmp_path, 1, "t", 0, items)
        assert meta.series == len(items)
        assert meta.file == "seg-00000001-t-L0.seg"
        loaded = read_segment(tmp_path, meta)
        assert [key for key, _ in loaded] == [key for key, _ in items]
        for (_, got), (_, want) in zip(loaded, items):
            assert got.times == want.times
            assert got.values == want.values
            assert got.observed_until == want.observed_until
            assert got.observation_count == want.observation_count

    def test_dimension_order_is_canonical(self, tmp_path):
        key = SeriesKey("m", (("a", "1"), ("b", "2")))
        table = Table("t")
        table.write(Record.make({"b": "2", "a": "1"}, "m", 5, 0.0))
        items = [(key, table.series(key))]
        meta = write_segment(tmp_path, 1, "t", 0, items)
        [(loaded_key, _)] = read_segment(tmp_path, meta)
        assert loaded_key == key

    def test_checksum_mismatch_detected(self, tmp_path):
        meta = write_segment(tmp_path, 1, "t", 0, build_items())
        path = tmp_path / meta.file
        path.write_bytes(path.read_bytes().replace(b'"m"', b'"x"', 1))
        with pytest.raises(CorruptSegmentError, match="checksum"):
            read_segment(tmp_path, meta)

    def test_missing_file_detected(self, tmp_path):
        meta = write_segment(tmp_path, 1, "t", 0, build_items())
        (tmp_path / meta.file).unlink()
        with pytest.raises(CorruptSegmentError, match="missing"):
            read_segment(tmp_path, meta)

    def test_header_mismatch_detected(self, tmp_path):
        meta = write_segment(tmp_path, 1, "t", 0, build_items())
        other = SegmentMeta(meta.file, meta.segment_id, "other", meta.level,
                            meta.series, meta.bytes, meta.sha256)
        with pytest.raises(CorruptSegmentError, match="header"):
            read_segment(tmp_path, other)

    def test_no_temp_files_left_behind(self, tmp_path):
        write_segment(tmp_path, 1, "t", 0, build_items())
        assert [p.name for p in tmp_path.iterdir()] == \
            ["seg-00000001-t-L0.seg"]

    @pytest.mark.parametrize("verify", [True, False])
    def test_empty_file_is_corrupt_not_index_error(self, tmp_path, verify):
        # regression: an empty v1 body used to escape as raw IndexError
        # when checksum verification was skipped
        with forced_segment_format(1):
            meta = write_segment(tmp_path, 1, "t", 0, build_items())
        (tmp_path / meta.file).write_bytes(b"")
        with pytest.raises(CorruptSegmentError):
            read_segment(tmp_path, meta, verify=verify)

    @pytest.mark.parametrize("fmt", [1, 2])
    def test_truncated_file_is_corrupt_without_verify(self, tmp_path, fmt):
        with forced_segment_format(fmt):
            meta = write_segment(tmp_path, 1, "t", 0, build_items())
        path = tmp_path / meta.file
        path.write_bytes(path.read_bytes()[:meta.bytes // 2])
        with pytest.raises(CorruptSegmentError):
            read_segment(tmp_path, meta, verify=False)

    def test_garbage_bytes_are_corrupt_without_verify(self, tmp_path):
        meta = write_segment(tmp_path, 1, "t", 0, build_items())
        (tmp_path / meta.file).write_bytes(b"\xff" * 64)
        with pytest.raises(CorruptSegmentError):
            read_segment(tmp_path, meta, verify=False)


class TestLegacyFormat:
    def test_v1_write_read_round_trip(self, tmp_path):
        items = build_items()
        with forced_segment_format(1):
            meta = write_segment(tmp_path, 1, "t", 0, items)
        assert meta.format == 1
        assert meta.file == "seg-00000001-t-L0.jsonl"
        loaded = read_segment(tmp_path, meta)
        assert [key for key, _ in loaded] == [key for key, _ in items]

    def test_v1_and_v2_agree_on_content_and_scans(self, tmp_path):
        items = build_items()
        meta2 = write_segment(tmp_path, 1, "t", 0, items)
        with forced_segment_format(1):
            meta1 = write_segment(tmp_path, 2, "t", 0, items)

        def norm(pairs):
            return [(k, s.times, s.values, s.observed_until,
                     s.observation_count) for k, s in pairs]

        assert norm(read_segment(tmp_path, meta2)) == \
            norm(read_segment(tmp_path, meta1))
        for window in [(float("-inf"), float("inf")), (10.0, 20.0),
                       (35.0, 99.0)]:
            assert scan_segment(tmp_path, meta1, *window) == \
                scan_segment(tmp_path, meta2, *window)

    def test_manifest_without_format_key_deserializes_as_v1(self, tmp_path):
        with forced_segment_format(1):
            meta = write_segment(tmp_path, 1, "t", 0, build_items())
        raw = meta.as_dict()
        del raw["format"]  # manifests from pre-columnar builds
        assert SegmentMeta.from_dict(raw).format == 1
        assert read_segment(tmp_path, SegmentMeta.from_dict(raw))

    def test_unsupported_format_rejected(self, tmp_path):
        meta = write_segment(tmp_path, 1, "t", 0, build_items())
        raw = meta.as_dict()
        raw["format"] = 99
        with pytest.raises(CorruptSegmentError, match="format"):
            read_segment(tmp_path, SegmentMeta.from_dict(raw))


class TestTableNameSanitization:
    def test_plain_names_embed_verbatim(self):
        assert sanitize_table_component("spot_prices.v2") == "spot_prices.v2"

    def test_level_marker_lookalike_cannot_collide(self):
        # regression: a table literally named "a-L1" used to produce
        # "seg-XXXXXXXX-a-L1-L0.seg", ambiguous with table "a" names
        name = segment_file_name(1, "a-L1", 0)
        assert name == f"seg-00000001-{sanitize_table_component('a-L1')}-L0.seg"
        assert "-" not in sanitize_table_component("a-L1")

    def test_path_separators_never_reach_the_file_name(self):
        for table in ["../escape", "a/b", "a\\b", "nul\x00byte", "sps 3"]:
            component = sanitize_table_component(table)
            assert "/" not in component and "\\" not in component
            assert "\x00" not in component and " " not in component

    def test_sanitization_is_injective(self):
        tables = ["a-L1", "a%2dL1", "a/b", "a%2fb", "t", "t.", "ü", "%fc"]
        components = {sanitize_table_component(t) for t in tables}
        assert len(components) == len(tables)

    def test_write_read_round_trip_with_hostile_name(self, tmp_path):
        items = build_items()
        meta = write_segment(tmp_path, 1, "a-L1/..", 0, items)
        assert (tmp_path / meta.file).is_file()
        assert Path(meta.file).name == meta.file  # no directory traversal
        loaded = read_segment(tmp_path, meta)
        assert [key for key, _ in loaded] == [key for key, _ in items]


def build_manifest(tmp_path):
    meta = write_segment(tmp_path, 1, "sps", 0, build_items())
    return Manifest(
        version=3, last_applied_seq=17, rounds_committed=4,
        last_commit_time=1234.5, next_segment_id=2, next_wal_number=2,
        tables={"sps": TableManifest(retention=3600.0, records_written=12,
                                     evicted_through=100.0,
                                     segments=[meta])})


class TestManifest:
    def test_store_load_round_trip(self, tmp_path):
        manifest = build_manifest(tmp_path)
        store_manifest(tmp_path, manifest)
        loaded = load_manifest(tmp_path)
        assert loaded.as_dict() == manifest.as_dict()
        assert loaded.live_files() == ["seg-00000001-sps-L0.seg"]
        assert loaded.live_bytes() == manifest.tables["sps"].segments[0].bytes

    def test_fresh_directory_has_no_manifest(self, tmp_path):
        assert load_manifest(tmp_path) is None

    def test_unsupported_format_rejected(self, tmp_path):
        store_manifest(tmp_path, Manifest())
        path = tmp_path / MANIFEST_NAME
        raw = json.loads(path.read_text())
        raw["format"] = 99
        path.write_text(json.dumps(raw))
        with pytest.raises(ValueError, match="format"):
            load_manifest(tmp_path)

    def test_crash_before_publish_keeps_old_version(self, tmp_path):
        old = build_manifest(tmp_path)
        store_manifest(tmp_path, old)
        new = build_manifest(tmp_path)
        new.version = 4
        hook = CrashInjector([CrashPoint("checkpoint.manifest", hit=0)])
        with pytest.raises(SimulatedCrash):
            store_manifest(tmp_path, new, hook)
        assert load_manifest(tmp_path).version == 3  # old manifest intact

    def test_crash_after_publish_shows_new_version(self, tmp_path):
        store_manifest(tmp_path, build_manifest(tmp_path))
        new = build_manifest(tmp_path)
        new.version = 4
        hook = CrashInjector([CrashPoint("checkpoint.publish", hit=0)])
        with pytest.raises(SimulatedCrash):
            store_manifest(tmp_path, new, hook)
        assert load_manifest(tmp_path).version == 4

    def test_directory_fsynced_before_publish_window(self, tmp_path,
                                                     monkeypatch):
        # regression: the rename used to be published without fsyncing
        # the directory, so a power loss inside the checkpoint.publish
        # window could resurrect the previous manifest version
        synced = []
        monkeypatch.setattr(segments_module, "fsync_directory",
                            lambda d: synced.append(Path(d)))
        hook = CrashInjector([CrashPoint("checkpoint.publish", hit=0)])
        with pytest.raises(SimulatedCrash):
            store_manifest(tmp_path, build_manifest(tmp_path), hook)
        # by the time the publish window fires, the rename is durable
        assert synced == [tmp_path]
        assert load_manifest(tmp_path).version == 3
