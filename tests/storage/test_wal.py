"""WAL unit tests: framing, group commit, torn tails, real corruption."""

import pytest

from repro.storage import CorruptWalError, WalWriter, read_wal
from repro.storage.wal import (
    decode_line,
    encode_record,
    list_wal_files,
    wal_file_name,
    wal_file_number,
)


def write_op(writer, value, time=0.0):
    return writer.append({"op": "write", "table": "t", "measure": "m",
                          "dims": {"k": "x"}, "value": value, "time": time})


class TestFraming:
    def test_encode_decode_round_trip(self):
        line = encode_record(7, {"op": "write", "value": 3})
        record = decode_line(line)
        assert record == {"seq": 7, "op": "write", "value": 3}

    def test_decode_rejects_missing_terminator(self):
        line = encode_record(1, {"op": "commit"})
        assert decode_line(line[:-1]) is None

    def test_decode_rejects_bad_checksum(self):
        line = bytearray(encode_record(1, {"op": "commit", "round": 1}))
        line[-3] ^= 0x01  # flip a payload byte, keep the crc
        assert decode_line(bytes(line)) is None

    def test_decode_rejects_garbage(self):
        assert decode_line(b"not a wal line\n") is None
        assert decode_line(b"zzzzzzzz {}\n") is None
        assert decode_line(b"00000000 [1,2]\n") is None

    def test_file_name_round_trip(self):
        assert wal_file_number(wal_file_name(42)) == 42
        assert wal_file_number("seg-00000001-t-L0.jsonl") is None
        assert wal_file_number("wal-abc.log") is None


class TestGroupCommit:
    def test_appends_invisible_until_commit(self, tmp_path):
        writer = WalWriter(tmp_path)
        write_op(writer, 1)
        write_op(writer, 2)
        assert writer.pending == 2
        replay = read_wal(tmp_path)
        assert replay.operations == []
        assert replay.rounds == 0

        writer.commit(1, 10.0)
        assert writer.pending == 0
        replay = read_wal(tmp_path)
        assert [op["value"] for op in replay.operations] == [1, 2]
        assert replay.rounds == 1
        assert replay.commits[0]["time"] == 10.0
        assert replay.last_seq == 3

    def test_uncommitted_batch_discarded(self, tmp_path):
        writer = WalWriter(tmp_path)
        write_op(writer, 1)
        writer.commit(1, 10.0)
        write_op(writer, 2)
        write_op(writer, 3)
        # simulate a crash before commit: the batch never reached disk
        writer.close()
        replay = read_wal(tmp_path)
        assert [op["value"] for op in replay.operations] == [1]
        assert replay.uncommitted_records == 0  # never written at all

    def test_commit_written_without_marker_is_discarded(self, tmp_path):
        # a batch that reaches the file but whose marker line is torn off
        writer = WalWriter(tmp_path)
        write_op(writer, 1)
        writer.commit(1, 10.0)
        write_op(writer, 2)
        marker_seq = writer.commit(2, 20.0)
        writer.close()
        path = tmp_path / wal_file_name(1)
        lines = path.read_bytes().splitlines(keepends=True)
        path.write_bytes(b"".join(lines[:-1]))  # drop the round-2 marker
        replay = read_wal(tmp_path)
        assert [op["value"] for op in replay.operations] == [1]
        assert replay.rounds == 1
        assert replay.uncommitted_records == 1
        assert replay.last_seq < marker_seq

    def test_after_seq_skips_checkpointed_prefix(self, tmp_path):
        writer = WalWriter(tmp_path)
        write_op(writer, 1)
        horizon = writer.commit(1, 10.0)
        write_op(writer, 2)
        writer.commit(2, 20.0)
        replay = read_wal(tmp_path, after_seq=horizon)
        assert [op["value"] for op in replay.operations] == [2]
        assert replay.rounds == 1


class TestTornTail:
    def test_torn_final_line_is_forgiven(self, tmp_path):
        writer = WalWriter(tmp_path)
        write_op(writer, 1)
        writer.commit(1, 10.0)
        writer.close()
        path = tmp_path / wal_file_name(1)
        with path.open("ab") as fh:
            fh.write(encode_record(3, {"op": "write"})[:10])  # torn write
        replay = read_wal(tmp_path)
        assert [op["value"] for op in replay.operations] == [1]
        assert replay.torn_lines == 1

    def test_invalid_line_before_valid_ones_raises(self, tmp_path):
        writer = WalWriter(tmp_path)
        write_op(writer, 1)
        writer.commit(1, 10.0)
        write_op(writer, 2)
        writer.commit(2, 20.0)
        writer.close()
        path = tmp_path / wal_file_name(1)
        lines = path.read_bytes().splitlines(keepends=True)
        corrupt = bytearray(lines[1])
        corrupt[-3] ^= 0x01
        path.write_bytes(lines[0] + bytes(corrupt) + b"".join(lines[2:]))
        with pytest.raises(CorruptWalError):
            read_wal(tmp_path)

    def test_sequence_gap_raises(self, tmp_path):
        writer = WalWriter(tmp_path)
        write_op(writer, 1)
        writer.commit(1, 10.0)
        write_op(writer, 2)
        writer.commit(2, 20.0)
        writer.close()
        path = tmp_path / wal_file_name(1)
        lines = path.read_bytes().splitlines(keepends=True)
        del lines[1]  # excise a middle record; later seqs now gap
        path.write_bytes(b"".join(lines))
        with pytest.raises(CorruptWalError):
            read_wal(tmp_path)


class TestSegmentation:
    def test_rolls_to_new_files_and_replays_across_them(self, tmp_path):
        writer = WalWriter(tmp_path, segment_bytes=200)
        for value in range(8):
            write_op(writer, value)
            writer.commit(value + 1, float(value))
        writer.close()
        files = list_wal_files(tmp_path)
        assert len(files) > 1
        replay = read_wal(tmp_path)
        assert [op["value"] for op in replay.operations] == list(range(8))
        assert replay.rounds == 8
        assert replay.max_file_number == files[-1][0]

    def test_reopen_appends_instead_of_clobbering(self, tmp_path):
        writer = WalWriter(tmp_path)
        write_op(writer, 1)
        writer.commit(1, 10.0)
        writer.close()
        replay = read_wal(tmp_path)
        writer = WalWriter(tmp_path, number=replay.max_file_number,
                           next_seq=replay.last_seq + 1)
        write_op(writer, 2)
        writer.commit(2, 20.0)
        writer.close()
        replay = read_wal(tmp_path)
        assert [op["value"] for op in replay.operations] == [1, 2]
        assert replay.rounds == 2
