"""Tests for the command-line interface."""

import json
from pathlib import Path

import pytest

from repro.cli import build_parser, main

REPO_ROOT = Path(__file__).resolve().parents[1]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_plan_defaults(self):
        args = build_parser().parse_args(["plan"])
        assert args.algorithm == "exact"
        assert args.seed == 0


class TestCommands:
    def test_plan(self, capsys):
        assert main(["plan", "--algorithm", "ffd"]) == 0
        out = capsys.readouterr().out
        assert "packed queries" in out
        assert "9299" in out.replace(",", "")

    def test_collect_restricted(self, capsys, tmp_path):
        code = main(["collect", "--types", "m5.large", "c5.xlarge",
                     "--rounds", "2", "--output", str(tmp_path / "snap")])
        assert code == 0
        out = capsys.readouterr().out
        assert "round 0" in out and "round 1" in out
        assert (tmp_path / "snap" / "sps.jsonl").exists()

    def test_query(self, capsys):
        assert main(["query", "--type", "m5.large",
                     "--region", "us-east-1", "--zone", "us-east-1a"]) == 0
        out = capsys.readouterr().out
        assert "sps:" in out
        assert "spot_price:" in out

    def test_serve_bench_small(self, capsys, tmp_path):
        report_path = tmp_path / "BENCH_serving.json"
        code = main(["serve-bench", "--days", "10", "--pool-types", "3",
                     "--repeats", "3", "--output", str(report_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "byte-identical cached vs uncached responses: True" in out
        report = json.loads(report_path.read_text())
        assert report["byte_identical"] is True
        assert report["speedup"] > 1.0
        assert report["metrics"]["cache"]["hit_rate"] > 0.5

    def test_serve_bench_min_speedup_gate(self, capsys):
        # an absurd floor must flip the exit code, not crash
        code = main(["serve-bench", "--days", "5", "--pool-types", "2",
                     "--repeats", "2", "--min-speedup", "1e9"])
        assert code == 1
        assert "below required" in capsys.readouterr().err

    def test_collect_with_data_dir_then_recover(self, capsys, tmp_path):
        data_dir = str(tmp_path / "data")
        code = main(["collect", "--types", "m5.large", "--rounds", "2",
                     "--data-dir", data_dir, "--checkpoint-every", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "storage:" in out and "rounds committed" in out
        assert (tmp_path / "data" / "MANIFEST").exists()

        # a restart resumes from the recovered timeline
        code = main(["collect", "--types", "m5.large", "--rounds", "1",
                     "--data-dir", data_dir])
        assert code == 0
        assert "recovered 2 committed round(s)" in capsys.readouterr().out

        snap = tmp_path / "snap"
        code = main(["recover", "--data-dir", data_dir,
                     "--output", str(snap)])
        assert code == 0
        out = capsys.readouterr().out
        assert "3 committed round(s)" in out
        assert "sps:" in out and "retention keep-all" in out
        assert (snap / "sps.jsonl").exists()

    def test_recover_missing_directory_is_empty_not_error(self, capsys,
                                                          tmp_path):
        # recover on a fresh (empty) directory reports zero state, exit 0
        assert main(["recover", "--data-dir", str(tmp_path / "nope")]) == 0
        assert "0 committed round(s)" in capsys.readouterr().out

    def test_recover_corrupt_wal_exits_one(self, capsys, tmp_path):
        from repro.storage.wal import encode_record

        data = tmp_path / "data"
        data.mkdir()
        # an invalid line FOLLOWED by a valid record is real corruption
        # (not a forgivable torn tail)
        (data / "wal-00000001.log").write_bytes(
            b"00000000 garbage\n"
            + encode_record(1, {"op": "commit", "round": 1, "time": 0.0}))
        assert main(["recover", "--data-dir", str(data)]) == 1
        assert "recovery failed" in capsys.readouterr().err

    def test_query_bad_region(self, capsys):
        assert main(["query", "--type", "m5.large",
                     "--region", "us-east-1",
                     "--zone", ""]) == 0  # zone optional -> region payload

    def test_experiment_small(self, capsys):
        assert main(["experiment", "--per-combo", "5"]) == 0
        out = capsys.readouterr().out
        assert "H-H" in out and "not-fulfilled" in out


class TestLintCommand:
    @pytest.fixture()
    def dirty_file(self, tmp_path):
        path = tmp_path / "dirty.py"
        path.write_text("import random\nx = random.random()\n")
        return path

    def test_shipped_tree_is_clean_exit_zero(self, capsys):
        src = REPO_ROOT / "src" / "repro"
        assert main(["lint", str(src)]) == 0
        assert "spotlint: clean" in capsys.readouterr().out

    def test_findings_exit_one_text(self, dirty_file, capsys):
        assert main(["lint", str(dirty_file)]) == 1
        out = capsys.readouterr().out
        assert "DET002" in out and "dirty.py:2" in out

    def test_format_json(self, dirty_file, capsys):
        assert main(["lint", str(dirty_file), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["finding_count"] == 1
        assert payload["findings"][0]["rule"] == "DET002"

    def test_rules_filter(self, dirty_file, capsys):
        # only DET003 requested -> the DET002 violation is out of scope
        assert main(["lint", str(dirty_file), "--rules", "DET003"]) == 0
        payload_ok = capsys.readouterr().out
        assert "spotlint: clean" in payload_ok
        assert main(["lint", str(dirty_file),
                     "--rules", "DET002,DET003"]) == 1

    def test_unknown_rule_is_usage_error(self, dirty_file, capsys):
        assert main(["lint", str(dirty_file), "--rules", "NOPE99"]) == 2
        assert "unknown rule code" in capsys.readouterr().err

    def test_missing_path_is_usage_error(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "nope.txt")]) == 2

    def test_bad_format_is_usage_error(self):
        with pytest.raises(SystemExit) as exc:
            main(["lint", "--format", "yaml"])
        assert exc.value.code == 2

    def test_suppression_visible_with_flag(self, tmp_path, capsys):
        path = tmp_path / "quiet.py"
        path.write_text("import random\n"
                        "x = random.random()  "
                        "# spotlint: disable=DET002 -- fixture\n")
        assert main(["lint", str(path)]) == 0
        assert main(["lint", str(path), "--show-suppressed"]) == 0
        assert "[suppressed]" in capsys.readouterr().out
