"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_plan_defaults(self):
        args = build_parser().parse_args(["plan"])
        assert args.algorithm == "exact"
        assert args.seed == 0


class TestCommands:
    def test_plan(self, capsys):
        assert main(["plan", "--algorithm", "ffd"]) == 0
        out = capsys.readouterr().out
        assert "packed queries" in out
        assert "9299" in out.replace(",", "")

    def test_collect_restricted(self, capsys, tmp_path):
        code = main(["collect", "--types", "m5.large", "c5.xlarge",
                     "--rounds", "2", "--output", str(tmp_path / "snap")])
        assert code == 0
        out = capsys.readouterr().out
        assert "round 0" in out and "round 1" in out
        assert (tmp_path / "snap" / "sps.jsonl").exists()

    def test_query(self, capsys):
        assert main(["query", "--type", "m5.large",
                     "--region", "us-east-1", "--zone", "us-east-1a"]) == 0
        out = capsys.readouterr().out
        assert "sps:" in out
        assert "spot_price:" in out

    def test_query_bad_region(self, capsys):
        assert main(["query", "--type", "m5.large",
                     "--region", "us-east-1",
                     "--zone", ""]) == 0  # zone optional -> region payload

    def test_experiment_small(self, capsys):
        assert main(["experiment", "--per-combo", "5"]) == 0
        out = capsys.readouterr().out
        assert "H-H" in out and "not-fulfilled" in out
