"""Tests for the deterministic hashing helpers."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro._util import (
    clip01,
    stable_choice,
    stable_hash,
    stable_range,
    stable_rng,
    stable_uniform,
)


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("a", 1, 2.5) == stable_hash("a", 1, 2.5)

    def test_different_parts_differ(self):
        assert stable_hash("a") != stable_hash("b")
        assert stable_hash("a", "b") != stable_hash("ab")

    def test_separator_prevents_concatenation_collisions(self):
        assert stable_hash("ab", "c") != stable_hash("a", "bc")

    def test_known_range(self):
        value = stable_hash("x")
        assert 0 <= value < 2**64


class TestStableUniform:
    @given(st.text(max_size=30), st.integers())
    def test_in_unit_interval(self, text, number):
        value = stable_uniform(text, number)
        assert 0.0 <= value < 1.0

    def test_roughly_uniform(self):
        samples = [stable_uniform("u", i) for i in range(2000)]
        assert 0.45 < float(np.mean(samples)) < 0.55
        assert min(samples) < 0.05 and max(samples) > 0.95


class TestStableRange:
    @given(st.integers(min_value=0, max_value=10**6))
    def test_within_bounds(self, key):
        value = stable_range(-2.0, 3.0, "k", key)
        assert -2.0 <= value < 3.0

    def test_degenerate_range(self):
        assert stable_range(1.5, 1.5, "x") == 1.5


class TestStableChoice:
    def test_picks_member(self):
        options = ["a", "b", "c"]
        assert stable_choice(options, "seed") in options

    def test_deterministic(self):
        assert stable_choice(range(100), 1, 2) == stable_choice(range(100), 1, 2)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            stable_choice([], "seed")


class TestStableRng:
    def test_streams_agree(self):
        a = stable_rng("s", 1).normal(size=5)
        b = stable_rng("s", 1).normal(size=5)
        assert np.allclose(a, b)

    def test_streams_differ_by_key(self):
        a = stable_rng("s", 1).normal(size=5)
        b = stable_rng("s", 2).normal(size=5)
        assert not np.allclose(a, b)


class TestClip01:
    @given(st.floats(allow_nan=False, allow_infinity=False, width=32))
    def test_always_in_unit_interval(self, value):
        assert 0.0 <= clip01(value) <= 1.0

    def test_identity_inside(self):
        assert clip01(0.42) == 0.42
