"""Batched table ingest must be observably identical to pointwise ingest.

``Table.append_many`` inlines the change-point test, the generation
stamping and the latest-value maintenance for speed; these tests pin the
equivalence the inlining must preserve: same series contents, same
stats, same generation stamps, same latest view, same errors.
"""

import pytest

from repro.timeseries import Record, Table
from repro.timeseries.record import SeriesKey, dimension_key


def _key(region: str) -> SeriesKey:
    return SeriesKey("sps", dimension_key({"Region": region, "AZ": region + "a"}))


def _points():
    """Three series over four stamps with dedup-able repeats."""
    keys = [_key(f"r{i}") for i in range(3)]
    out = []
    for step in range(4):
        for i, key in enumerate(keys):
            out.append((key, float(step), (step // 2 + i) % 3))
    return out


def _by_pointwise(points):
    table = Table("t")
    for key, time, value in points:
        table.append_point(key, time, value)
    return table


class TestBatchPointwiseParity:
    def test_series_stats_and_latest_match(self):
        points = _points()
        pointwise = _by_pointwise(points)
        batched = Table("t")
        changed = batched.append_many(points)

        assert changed == batched.stats.change_points_stored
        assert batched.stats.records_written == \
            pointwise.stats.records_written == len(points)
        assert batched.stats.change_points_stored == \
            pointwise.stats.change_points_stored
        assert batched.stats.series_count == pointwise.stats.series_count
        for key in pointwise.series_keys():
            a, b = pointwise.series(key), batched.series(key)
            assert a.times == b.times and a.values == b.values
            assert a.observed_until == b.observed_until
            assert a.observation_count == b.observation_count
        assert pointwise.latest("sps") == batched.latest("sps")

    def test_generation_stamps_match_pointwise(self):
        points = _points()
        pointwise = _by_pointwise(points)
        batched = Table("t")
        batched.append_many(points)
        assert batched.generation == pointwise.generation
        for key in pointwise.series_keys():
            assert batched.series_generation(key) == \
                pointwise.series_generation(key)
        assert batched.generation_stamp("sps") == \
            pointwise.generation_stamp("sps")

    def test_append_point_matches_write(self):
        record = Record.make({"Region": "r1", "AZ": "r1a"}, "sps", 3, 5.0)
        via_write = Table("t")
        via_write.write(record)
        via_point = Table("t")
        via_point.append_point(SeriesKey.of(record), 5.0, 3)
        key = via_write.series_keys()[0]
        assert via_point.series(key).times == via_write.series(key).times
        assert via_point.latest("sps") == via_write.latest("sps")
        assert via_point.generation == via_write.generation

    def test_out_of_order_batch_raises_like_pointwise(self):
        key = _key("r0")
        table = Table("t")
        table.append_many([(key, 10.0, 1)])
        with pytest.raises(ValueError, match="out-of-order"):
            table.append_many([(key, 5.0, 2)])
        # the in-order prefix before the bad point still landed
        table2 = Table("t")
        with pytest.raises(ValueError):
            table2.append_many([(key, 10.0, 1), (key, 5.0, 2)])
        assert table2.series(key).times == [10.0]

    def test_dedup_still_applies_within_a_batch(self):
        key = _key("r0")
        table = Table("t")
        changed = table.append_many(
            [(key, 0.0, 7), (key, 1.0, 7), (key, 2.0, 8), (key, 3.0, 8)])
        assert changed == 2
        series = table.series(key)
        assert series.times == [0.0, 2.0]
        assert series.observation_count == 4
