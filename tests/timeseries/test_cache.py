"""Tests for the generation-stamped query cache."""

import json

from repro.timeseries import QueryCache, QuerySpec, Record, Table, run_query


def rec(value, t, it="m5.large", region="us-east-1", zone="a",
        measure="sps"):
    return Record.make({"it": it, "region": region, "zone": zone},
                       measure, value, t)


def serialize(records):
    return json.dumps([[r.time, r.measure_name, r.value, r.dimension_dict]
                       for r in records], sort_keys=True)


class TestMemoization:
    def test_repeated_scan_hits(self):
        table = Table("t")
        table.write_records([rec(3, 0), rec(2, 10)])
        cache = QueryCache(table)
        first = cache.scan("sps")
        second = cache.scan("sps")
        assert first is second  # memoized, not recomputed
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_scan_results_match_uncached(self):
        table = Table("t")
        table.write_records([rec(3, 0), rec(2, 10), rec(5, 3, it="c5.large")])
        cache = QueryCache(table)
        assert serialize(cache.scan("sps")) == serialize(table.scan("sps"))
        cache.scan("sps")
        assert serialize(cache.scan("sps")) == serialize(table.scan("sps"))

    def test_distinct_specs_get_distinct_entries(self):
        table = Table("t")
        table.write_records([rec(3, 0), rec(2, 10)])
        cache = QueryCache(table)
        cache.scan("sps")
        cache.scan("sps", start=5)
        cache.scan("sps", {"it": "m5.large"})
        assert cache.stats.misses == 3

    def test_value_at_and_latest_cached(self):
        table = Table("t")
        table.write_records([rec(3, 0), rec(2, 10)])
        cache = QueryCache(table)
        dims = {"it": "m5.large", "region": "us-east-1", "zone": "a"}
        assert cache.value_at("sps", dims, 5) == 3
        assert cache.value_at("sps", dims, 5) == 3
        assert cache.latest("sps") == cache.latest("sps")
        assert cache.stats.hits == 2

    def test_value_at_caches_absent_series(self):
        table = Table("t")
        cache = QueryCache(table)
        dims = {"it": "nope", "region": "r", "zone": "z"}
        assert cache.value_at("sps", dims, 5) is None
        assert cache.value_at("sps", dims, 5) is None
        assert cache.stats.hits == 1
        # the series appearing later invalidates the cached None
        table.write(rec(7, 0, it="nope", region="r", zone="z"))
        assert cache.value_at("sps", dims, 5) == 7


class TestInvalidation:
    def test_overlapping_write_invalidates(self):
        table = Table("t")
        table.write(rec(3, 0))
        cache = QueryCache(table)
        assert [r.value for r in cache.scan("sps")] == [3]
        table.write(rec(2, 10))
        assert [r.value for r in cache.scan("sps")] == [3, 2]
        assert cache.stats.invalidations == 1

    def test_non_overlapping_write_preserves_entry(self):
        table = Table("t")
        table.write(rec(3, 0))
        cache = QueryCache(table)
        first = cache.scan("sps", {"it": "m5.large"})
        table.write(rec(9, 5, measure="price", it="c5.large"))
        assert cache.scan("sps", {"it": "m5.large"}) is first
        assert cache.stats.hits == 1

    def test_eviction_invalidates(self):
        table = Table("t")
        table.write_records([rec(3, 0), rec(2, 20)])
        cache = QueryCache(table)
        assert len(cache.scan("sps")) == 2
        table.evict_before(20)
        assert len(cache.scan("sps")) == 1

    def test_latest_invalidated_by_new_change_point(self):
        table = Table("t")
        table.write(rec(3, 0))
        cache = QueryCache(table)
        assert [r.value for r in cache.latest("sps")] == [3]
        table.write(rec(1, 50))
        assert [r.value for r in cache.latest("sps")] == [1]


class TestCapacity:
    def test_lru_eviction_beyond_max_entries(self):
        table = Table("t")
        table.write(rec(3, 0))
        cache = QueryCache(table, max_entries=2)
        cache.scan("sps", start=0)
        cache.scan("sps", start=1)
        cache.scan("sps", start=2)  # evicts the start=0 entry
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        cache.scan("sps", start=0)  # recomputed
        assert cache.stats.misses == 4

    def test_clear(self):
        table = Table("t")
        table.write(rec(3, 0))
        cache = QueryCache(table)
        cache.scan("sps")
        cache.clear()
        assert len(cache) == 0

    def test_stats_dict_shape(self):
        cache = QueryCache(Table("t"))
        stats = cache.stats.as_dict()
        assert set(stats) == {"hits", "misses", "invalidations",
                              "evictions", "hit_rate"}


class TestQuerySpecIntegration:
    def test_run_query_through_cache(self):
        table = Table("t")
        table.write_records([rec(3, 0), rec(2, 10)])
        cache = QueryCache(table)
        spec = QuerySpec(measure_name="sps", start=0, end=100)
        assert run_query(table, spec, cache) == run_query(table, spec)
        assert run_query(table, spec, cache) is run_query(table, spec, cache)

    def test_nan_bounds_rejected(self):
        import pytest
        with pytest.raises(ValueError):
            QuerySpec(start=float("nan"))
        with pytest.raises(ValueError):
            QuerySpec(end=float("nan"))
