"""Tests for change-point (dedup) compression."""

import pytest
from hypothesis import given, strategies as st

from repro.timeseries import ChangePointSeries


class TestAppend:
    def test_dedups_repeats(self):
        series = ChangePointSeries()
        changed = [series.append(t, v) for t, v in
                   [(0, 3), (10, 3), (20, 3), (30, 2), (40, 2), (50, 3)]]
        assert changed == [True, False, False, True, False, True]
        assert len(series) == 3
        assert series.observation_count == 6

    def test_out_of_order_rejected(self):
        series = ChangePointSeries()
        series.append(10, 1)
        with pytest.raises(ValueError):
            series.append(5, 2)

    def test_equal_time_allowed(self):
        series = ChangePointSeries()
        series.append(10, 1)
        series.append(10, 2)  # same instant, new value
        assert series.value_at(10) == 2


class TestValueAt:
    def test_before_first_is_none(self):
        series = ChangePointSeries()
        series.append(10, 1)
        assert series.value_at(9.99) is None

    def test_step_semantics(self):
        series = ChangePointSeries()
        series.append(0, "a")
        series.append(10, "b")
        assert series.value_at(0) == "a"
        assert series.value_at(9.99) == "a"
        assert series.value_at(10) == "b"
        assert series.value_at(1e9) == "b"


class TestDerived:
    def test_update_intervals(self):
        series = ChangePointSeries()
        for t, v in [(0, 1), (5, 2), (20, 3)]:
            series.append(t, v)
        assert series.update_intervals() == [5, 15]

    def test_change_points_range(self):
        series = ChangePointSeries()
        for t, v in [(0, 1), (5, 2), (20, 3)]:
            series.append(t, v)
        assert series.change_points(4, 20) == [(5, 2), (20, 3)]

    def test_resample(self):
        series = ChangePointSeries()
        series.append(0, 1)
        series.append(10, 2)
        assert series.resample([-1, 0, 5, 15]) == [None, 1, 1, 2]

    def test_compression_ratio(self):
        series = ChangePointSeries()
        for t in range(10):
            series.append(t, 7)
        assert series.compression_ratio() == 0.1

    def test_empty_ratio(self):
        assert ChangePointSeries().compression_ratio() == 1.0


class TestPropertyBased:
    @given(st.lists(st.integers(min_value=0, max_value=5), min_size=1,
                    max_size=60))
    def test_reconstruction_is_lossless_at_observation_times(self, values):
        """Compressing then resampling at the observation instants returns
        exactly the observed values."""
        series = ChangePointSeries()
        times = list(range(len(values)))
        for t, v in zip(times, values):
            series.append(float(t), v)
        assert series.resample([float(t) for t in times]) == values

    @given(st.lists(st.integers(min_value=0, max_value=3), min_size=2,
                    max_size=60))
    def test_stored_points_never_adjacent_equal(self, values):
        series = ChangePointSeries()
        for t, v in enumerate(values):
            series.append(float(t), v)
        stored = series.values
        assert all(a != b for a, b in zip(stored, stored[1:]))
