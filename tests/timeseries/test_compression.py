"""Tests for change-point (dedup) compression."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.timeseries import ChangePointSeries, values_equal


class TestAppend:
    def test_dedups_repeats(self):
        series = ChangePointSeries()
        changed = [series.append(t, v) for t, v in
                   [(0, 3), (10, 3), (20, 3), (30, 2), (40, 2), (50, 3)]]
        assert changed == [True, False, False, True, False, True]
        assert len(series) == 3
        assert series.observation_count == 6

    def test_out_of_order_rejected(self):
        series = ChangePointSeries()
        series.append(10, 1)
        with pytest.raises(ValueError):
            series.append(5, 2)

    def test_equal_time_allowed(self):
        series = ChangePointSeries()
        series.append(10, 1)
        series.append(10, 2)  # same instant, new value
        assert series.value_at(10) == 2


class TestValuesEqual:
    def test_nan_equals_nan(self):
        assert values_equal(float("nan"), float("nan"))

    def test_nan_not_equal_to_number(self):
        assert not values_equal(float("nan"), 1.0)
        assert not values_equal(1.0, float("nan"))

    def test_cross_type_numeric_equality_rejected(self):
        # bool is a subclass of int and True == 1 == 1.0 in Python; the
        # archive must keep the concrete types distinct
        assert not values_equal(True, 1)
        assert not values_equal(1, 1.0)
        assert not values_equal(False, 0)
        assert not values_equal("1", 1)

    def test_same_type_equality(self):
        assert values_equal(1, 1)
        assert values_equal(1.5, 1.5)
        assert values_equal("a", "a")
        assert values_equal(True, True)
        assert not values_equal(1, 2)


class TestTypedDedup:
    def test_nan_rounds_dedup_to_one_change_point(self):
        # regression: NaN != NaN made every NaN observation a change point
        series = ChangePointSeries()
        for t in range(5):
            series.append(float(t), float("nan"))
        assert len(series) == 1
        assert series.observation_count == 5
        assert math.isnan(series.values[0])

    def test_bool_and_int_do_not_collapse(self):
        # regression: True == 1 used to swallow the type flip entirely
        series = ChangePointSeries()
        assert series.append(0.0, 1)
        assert series.append(1.0, True)
        assert series.append(2.0, 1.0)
        assert series.values == [1, True, 1.0]
        assert [type(v) for v in series.values] == [int, bool, float]

    def test_nan_to_number_transitions_recorded(self):
        series = ChangePointSeries()
        series.append(0.0, float("nan"))
        series.append(1.0, 2.5)
        series.append(2.0, float("nan"))
        assert len(series) == 3


class TestValueAt:
    def test_before_first_is_none(self):
        series = ChangePointSeries()
        series.append(10, 1)
        assert series.value_at(9.99) is None

    def test_step_semantics(self):
        series = ChangePointSeries()
        series.append(0, "a")
        series.append(10, "b")
        assert series.value_at(0) == "a"
        assert series.value_at(9.99) == "a"
        assert series.value_at(10) == "b"
        assert series.value_at(1e9) == "b"


class TestDerived:
    def test_update_intervals(self):
        series = ChangePointSeries()
        for t, v in [(0, 1), (5, 2), (20, 3)]:
            series.append(t, v)
        assert series.update_intervals() == [5, 15]

    def test_change_points_range(self):
        series = ChangePointSeries()
        for t, v in [(0, 1), (5, 2), (20, 3)]:
            series.append(t, v)
        assert series.change_points(4, 20) == [(5, 2), (20, 3)]

    def test_resample(self):
        series = ChangePointSeries()
        series.append(0, 1)
        series.append(10, 2)
        assert series.resample([-1, 0, 5, 15]) == [None, 1, 1, 2]

    def test_compression_ratio(self):
        series = ChangePointSeries()
        for t in range(10):
            series.append(t, 7)
        assert series.compression_ratio() == 0.1

    def test_empty_ratio(self):
        assert ChangePointSeries().compression_ratio() == 1.0


class TestPropertyBased:
    @given(st.lists(st.integers(min_value=0, max_value=5), min_size=1,
                    max_size=60))
    def test_reconstruction_is_lossless_at_observation_times(self, values):
        """Compressing then resampling at the observation instants returns
        exactly the observed values."""
        series = ChangePointSeries()
        times = list(range(len(values)))
        for t, v in zip(times, values):
            series.append(float(t), v)
        assert series.resample([float(t) for t in times]) == values

    @given(st.lists(st.integers(min_value=0, max_value=3), min_size=2,
                    max_size=60))
    def test_stored_points_never_adjacent_equal(self, values):
        series = ChangePointSeries()
        for t, v in enumerate(values):
            series.append(float(t), v)
        stored = series.values
        assert all(a != b for a, b in zip(stored, stored[1:]))

    @given(st.lists(st.integers(min_value=0, max_value=5), min_size=1,
                    max_size=60),
           st.floats(min_value=-10, max_value=70, allow_nan=False),
           st.floats(min_value=-10, max_value=70, allow_nan=False))
    def test_change_points_bisect_matches_naive_scan(self, values, a, b):
        """The bisect-based range query agrees with a linear scan for any
        window, including empty, inverted and out-of-range ones."""
        series = ChangePointSeries()
        for t, v in enumerate(values):
            series.append(float(t), v)
        start, end = min(a, b), max(a, b)
        naive = [(t, v) for t, v in zip(series.times, series.values)
                 if start <= t <= end]
        assert series.change_points(start, end) == naive
        if start < end:
            assert series.change_points(end, start) == []
        assert series.change_points() == \
            list(zip(series.times, series.values))
