"""Tests for store snapshots (dump/load round trips)."""

import pytest

from repro.timeseries import Record, RetentionPolicy, Table, TimeSeriesStore
from repro.timeseries.persistence import (
    dump_store,
    dump_table,
    load_store,
    load_table,
    load_table_with_policy,
)


def build_table():
    table = Table("sps")
    for t, v in [(0, 3), (10, 3), (20, 2), (30, 3)]:
        table.write(Record.make({"it": "m5.large", "az": "a"}, "sps", v, t))
    table.write(Record.make({"it": "c5.large", "az": "b"}, "sps", 1, 5))
    return table


class TestTableRoundTrip:
    def test_lossless(self, tmp_path):
        table = build_table()
        path = tmp_path / "sps.jsonl"
        written = dump_table(table, path)
        assert written == 2

        loaded = load_table(path)
        assert loaded.name == "sps"
        assert len(loaded) == len(table)
        dims = {"it": "m5.large", "az": "a"}
        for t in (0, 15, 25, 35):
            assert loaded.value_at("sps", dims, t) == table.value_at("sps", dims, t)

    def test_stats_preserved(self, tmp_path):
        table = build_table()
        path = tmp_path / "sps.jsonl"
        dump_table(table, path)
        loaded = load_table(path)
        assert loaded.stats.records_written == table.stats.records_written
        assert loaded.stats.change_points_stored == \
            table.stats.change_points_stored
        assert loaded.stats.dedup_ratio == table.stats.dedup_ratio

    def test_appends_continue_after_load(self, tmp_path):
        table = build_table()
        path = tmp_path / "sps.jsonl"
        dump_table(table, path)
        loaded = load_table(path)
        changed = loaded.write(Record.make(
            {"it": "m5.large", "az": "a"}, "sps", 3, 40))
        assert not changed  # 3 was already the latest value

    def test_bad_version_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"format": 99, "table": "x", "records_written": 0}\n')
        with pytest.raises(ValueError):
            load_table(path)

    def test_series_count_stat_round_trips(self, tmp_path):
        """Regression: install_series must rebuild series_count, so a
        loaded table's TableStats match the dumped table's exactly."""
        table = build_table()
        path = tmp_path / "sps.jsonl"
        dump_table(table, path)
        loaded = load_table(path)
        assert loaded.stats.series_count == table.stats.series_count == 2
        assert loaded.stats.change_points_stored == \
            table.stats.change_points_stored

    def test_atomic_dump_leaves_original_on_failure(self, tmp_path):
        """A failing dump must not clobber the existing snapshot file."""
        table = build_table()
        path = tmp_path / "sps.jsonl"
        dump_table(table, path)
        original = path.read_bytes()

        class Boom(RuntimeError):
            pass

        broken = build_table()
        broken.write(Record.make({"it": "m5.large", "az": "a"}, "sps", 2, 50))
        series = broken.series(broken.series_keys()[1])
        series.values[-1] = float("nan")  # allow_nan=False -> dump raises
        with pytest.raises(ValueError):
            dump_table(broken, path)
        assert path.read_bytes() == original
        assert list(tmp_path.iterdir()) == [path]  # no temp debris

    def test_retention_policy_round_trips(self, tmp_path):
        table = build_table()
        path = tmp_path / "sps.jsonl"
        dump_table(table, path, policy=RetentionPolicy(3600.0))
        loaded, policy = load_table_with_policy(path)
        assert policy.max_age_seconds == 3600.0
        assert len(loaded) == len(table)

    def test_policy_absent_in_old_snapshots(self, tmp_path):
        table = build_table()
        path = tmp_path / "sps.jsonl"
        dump_table(table, path)  # no policy: pre-retention header shape
        _, policy = load_table_with_policy(path)
        assert policy is None


class TestStoreRoundTrip:
    def test_directory_round_trip(self, tmp_path):
        store = TimeSeriesStore()
        store.create_table("sps").write(
            Record.make({"k": "a"}, "sps", 3, 0))
        store.create_table("price").write(
            Record.make({"k": "a"}, "spot_price", 0.03, 0))
        written = dump_store(store, tmp_path / "snap")
        assert written == {"sps": 1, "price": 1}

        loaded = load_store(tmp_path / "snap")
        assert loaded.table_names() == ["price", "sps"]
        assert loaded.table("sps").value_at("sps", {"k": "a"}, 1) == 3
        assert loaded.table("price").value_at("spot_price", {"k": "a"}, 1) == 0.03

    def test_archive_level_round_trip(self, tmp_path):
        """A SpotLake archive survives dump/load through its store."""
        from repro.core import SpotLakeArchive
        archive = SpotLakeArchive()
        archive.put_sps("m5.large", "us-east-1", "us-east-1a", 3, 0)
        archive.put_advisor("m5.large", "us-east-1", 0.03, 3.0, 70, 0)
        dump_store(archive.store, tmp_path / "arch")

        restored = SpotLakeArchive()
        restored.store = load_store(tmp_path / "arch")
        assert restored.sps_at("m5.large", "us-east-1", "us-east-1a", 1) == 3
        assert restored.if_score_at("m5.large", "us-east-1", 1) == 3.0
