"""Tests for the query layer (resampling, aggregation, update intervals)."""

import numpy as np
import pytest

from repro.timeseries import (
    QuerySpec,
    Record,
    Table,
    group_aggregate,
    resample_matrix,
    run_query,
    update_intervals,
)


@pytest.fixture()
def table():
    t = Table("sps")
    for itype, steps in (("m5.large", [(0, 3), (10, 2)]),
                         ("c5.large", [(0, 1), (30, 3)])):
        for time, value in steps:
            t.write(Record.make({"it": itype}, "sps", value, time))
    return t


class TestQuerySpec:
    def test_invalid_range(self):
        with pytest.raises(ValueError):
            QuerySpec(start=10, end=0)

    def test_run_query_filters(self, table):
        records = run_query(table, QuerySpec(measure_name="sps",
                                             filters={"it": "m5.large"}))
        assert len(records) == 2
        assert all(r.dimension_dict["it"] == "m5.large" for r in records)

    def test_run_query_range(self, table):
        records = run_query(table, QuerySpec(measure_name="sps", start=5, end=20))
        assert [r.value for r in records] == [2]


class TestResample:
    def test_matrix_shape_and_values(self, table):
        keys, matrix = resample_matrix(table, "sps", [0, 15, 40])
        assert matrix.shape == (2, 3)
        by_type = {k.dimension_dict["it"]: matrix[i]
                   for i, k in enumerate(keys)}
        assert list(by_type["m5.large"]) == [3, 2, 2]
        assert list(by_type["c5.large"]) == [1, 1, 3]

    def test_nan_before_first_observation(self, table):
        _, matrix = resample_matrix(table, "sps", [-5, 0])
        assert np.all(np.isnan(matrix[:, 0]))
        assert not np.any(np.isnan(matrix[:, 1]))

    def test_string_series_rejected(self):
        t = Table("labels")
        t.write(Record.make({"it": "x"}, "label", "hello", 0))
        with pytest.raises(TypeError):
            resample_matrix(t, "label", [0])


class TestUpdateIntervals:
    def test_pooled(self, table):
        intervals = update_intervals(table, "sps")
        assert sorted(intervals) == [10, 30]

    def test_filtered(self, table):
        assert update_intervals(table, "sps", {"it": "c5.large"}) == [30]


class TestGroupAggregate:
    def test_grouping(self, table):
        groups = group_aggregate(
            table, "sps",
            group_fn=lambda k: k.dimension_dict["it"].split(".")[0],
            sample_times=[0, 15, 40])
        assert set(groups) == {"m5", "c5"}
        assert groups["m5"] == pytest.approx(np.mean([3, 2, 2]))

    def test_none_excludes(self, table):
        groups = group_aggregate(
            table, "sps",
            group_fn=lambda k: None,
            sample_times=[0])
        assert groups == {}
