"""Tests for the multi-table store and retention policies."""

import pytest

from repro.timeseries import Record, RetentionPolicy, TimeSeriesStore


def rec(value, t):
    return Record.make({"it": "m5.large"}, "sps", value, t)


class TestStore:
    def test_create_and_get(self):
        store = TimeSeriesStore()
        table = store.create_table("sps")
        assert store.table("sps") is table
        assert store.table_names() == ["sps"]

    def test_create_idempotent(self):
        store = TimeSeriesStore()
        a = store.create_table("sps")
        b = store.create_table("sps")
        assert a is b

    def test_missing_table_raises(self):
        with pytest.raises(KeyError):
            TimeSeriesStore().table("nope")

    def test_write_batch(self):
        store = TimeSeriesStore()
        store.create_table("sps")
        changes = store.write("sps", [rec(3, 0), rec(3, 10), rec(2, 20)])
        assert changes == 2

    def test_stats(self):
        store = TimeSeriesStore()
        store.create_table("sps")
        store.write("sps", [rec(3, 0), rec(3, 10)])
        stats = store.stats()
        assert stats["sps"]["records_written"] == 2
        assert stats["sps"]["change_points_stored"] == 1
        assert stats["sps"]["dedup_ratio"] == 0.5


class TestRetention:
    def test_policy_applied(self):
        store = TimeSeriesStore()
        store.create_table("sps", RetentionPolicy(max_age_seconds=100))
        store.write("sps", [rec(3, 0), rec(2, 50), rec(1, 200)])
        dropped = store.apply_retention(now=250)
        assert dropped["sps"] == 1  # only the t=0 point ages out

    def test_no_policy_keeps_everything(self):
        store = TimeSeriesStore()
        store.create_table("sps")
        store.write("sps", [rec(3, 0), rec(2, 50)])
        assert store.apply_retention(now=1e9) == {}

    def test_policy_cutoff(self):
        policy = RetentionPolicy(max_age_seconds=60)
        assert policy.cutoff(100) == 40
        assert RetentionPolicy().cutoff(100) is None
