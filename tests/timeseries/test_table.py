"""Tests for the dimensioned time-series table."""

from repro.timeseries import Record, Table


def rec(value, t, it="m5.large", region="us-east-1", zone="a",
        measure="sps"):
    return Record.make({"it": it, "region": region, "zone": zone},
                       measure, value, t)


class TestWrites:
    def test_series_created_per_dimension_set(self):
        table = Table("t")
        table.write(rec(3, 0))
        table.write(rec(3, 10, it="c5.large"))
        assert len(table) == 2

    def test_batch_write_returns_change_count(self):
        table = Table("t")
        changes = table.write_records([rec(3, 0), rec(3, 10), rec(2, 20)])
        assert changes == 2

    def test_stats(self):
        table = Table("t")
        table.write_records([rec(3, 0), rec(3, 10), rec(2, 20)])
        assert table.stats.records_written == 3
        assert table.stats.change_points_stored == 2
        assert table.stats.dedup_ratio == 2 / 3


class TestReads:
    def test_value_at(self):
        table = Table("t")
        table.write_records([rec(3, 0), rec(2, 20)])
        dims = {"it": "m5.large", "region": "us-east-1", "zone": "a"}
        assert table.value_at("sps", dims, 10) == 3
        assert table.value_at("sps", dims, 25) == 2
        assert table.value_at("sps", dims, -1) is None
        assert table.value_at("sps", {"it": "nope"}, 10) is None

    def test_latest(self):
        table = Table("t")
        table.write_records([rec(3, 0), rec(2, 20), rec(1, 5, it="c5.large")])
        latest = table.latest("sps")
        assert len(latest) == 2
        by_type = {r.dimension_dict["it"]: r.value for r in latest}
        assert by_type == {"m5.large": 2, "c5.large": 1}

    def test_latest_with_filters(self):
        table = Table("t")
        table.write_records([rec(3, 0), rec(1, 5, it="c5.large")])
        latest = table.latest("sps", {"it": "c5.large"})
        assert len(latest) == 1

    def test_scan_time_ordered(self):
        table = Table("t")
        table.write_records([rec(3, 0), rec(2, 20), rec(1, 5, it="c5.large")])
        scanned = table.scan("sps")
        times = [r.time for r in scanned]
        assert times == sorted(times)

    def test_scan_with_range(self):
        table = Table("t")
        table.write_records([rec(3, 0), rec(2, 20), rec(1, 40)])
        assert len(table.scan("sps", start=10, end=30)) == 1

    def test_dimension_index_consistency(self):
        table = Table("t")
        table.write_records([rec(3, 0), rec(1, 5, region="eu-west-1")])
        keys = table.series_keys("sps", {"region": "eu-west-1"})
        assert len(keys) == 1
        assert keys[0].dimension_dict["region"] == "eu-west-1"


class TestRetention:
    def test_evict_keeps_value_in_force(self):
        table = Table("t")
        table.write_records([rec(3, 0), rec(2, 20), rec(1, 40)])
        dropped = table.evict_before(30)
        assert dropped == 1  # the t=0 point goes; t=20 remains in force
        dims = {"it": "m5.large", "region": "us-east-1", "zone": "a"}
        assert table.value_at("sps", dims, 30) == 2
        assert table.value_at("sps", dims, 45) == 1

    def test_evict_updates_stats(self):
        table = Table("t")
        table.write_records([rec(3, 0), rec(2, 20), rec(1, 40)])
        before = table.stats.change_points_stored
        dropped = table.evict_before(50)
        assert table.stats.change_points_stored == before - dropped
