"""Tests for the dimensioned time-series table."""

from repro.timeseries import Record, Table


def rec(value, t, it="m5.large", region="us-east-1", zone="a",
        measure="sps"):
    return Record.make({"it": it, "region": region, "zone": zone},
                       measure, value, t)


class TestWrites:
    def test_series_created_per_dimension_set(self):
        table = Table("t")
        table.write(rec(3, 0))
        table.write(rec(3, 10, it="c5.large"))
        assert len(table) == 2

    def test_batch_write_returns_change_count(self):
        table = Table("t")
        changes = table.write_records([rec(3, 0), rec(3, 10), rec(2, 20)])
        assert changes == 2

    def test_stats(self):
        table = Table("t")
        table.write_records([rec(3, 0), rec(3, 10), rec(2, 20)])
        assert table.stats.records_written == 3
        assert table.stats.change_points_stored == 2
        assert table.stats.dedup_ratio == 2 / 3


class TestReads:
    def test_value_at(self):
        table = Table("t")
        table.write_records([rec(3, 0), rec(2, 20)])
        dims = {"it": "m5.large", "region": "us-east-1", "zone": "a"}
        assert table.value_at("sps", dims, 10) == 3
        assert table.value_at("sps", dims, 25) == 2
        assert table.value_at("sps", dims, -1) is None
        assert table.value_at("sps", {"it": "nope"}, 10) is None

    def test_latest(self):
        table = Table("t")
        table.write_records([rec(3, 0), rec(2, 20), rec(1, 5, it="c5.large")])
        latest = table.latest("sps")
        assert len(latest) == 2
        by_type = {r.dimension_dict["it"]: r.value for r in latest}
        assert by_type == {"m5.large": 2, "c5.large": 1}

    def test_latest_with_filters(self):
        table = Table("t")
        table.write_records([rec(3, 0), rec(1, 5, it="c5.large")])
        latest = table.latest("sps", {"it": "c5.large"})
        assert len(latest) == 1

    def test_scan_time_ordered(self):
        table = Table("t")
        table.write_records([rec(3, 0), rec(2, 20), rec(1, 5, it="c5.large")])
        scanned = table.scan("sps")
        times = [r.time for r in scanned]
        assert times == sorted(times)

    def test_scan_with_range(self):
        table = Table("t")
        table.write_records([rec(3, 0), rec(2, 20), rec(1, 40)])
        assert len(table.scan("sps", start=10, end=30)) == 1

    def test_dimension_index_consistency(self):
        table = Table("t")
        table.write_records([rec(3, 0), rec(1, 5, region="eu-west-1")])
        keys = table.series_keys("sps", {"region": "eu-west-1"})
        assert len(keys) == 1
        assert keys[0].dimension_dict["region"] == "eu-west-1"


class TestRetention:
    def test_evict_keeps_value_in_force(self):
        table = Table("t")
        table.write_records([rec(3, 0), rec(2, 20), rec(1, 40)])
        dropped = table.evict_before(30)
        assert dropped == 1  # the t=0 point goes; t=20 remains in force
        dims = {"it": "m5.large", "region": "us-east-1", "zone": "a"}
        assert table.value_at("sps", dims, 30) == 2
        assert table.value_at("sps", dims, 45) == 1

    def test_evict_updates_stats(self):
        table = Table("t")
        table.write_records([rec(3, 0), rec(2, 20), rec(1, 40)])
        before = table.stats.change_points_stored
        dropped = table.evict_before(50)
        assert table.stats.change_points_stored == before - dropped

    def test_evict_point_exactly_at_cutoff_drops_stale_predecessors(self):
        # regression: a change point sitting exactly at the cutoff used to
        # shield the strictly-before point from eviction (off-by-one)
        table = Table("t")
        table.write_records([rec(3, 0), rec(2, 5), rec(1, 10)])
        dropped = table.evict_before(10)
        assert dropped == 2  # t=0 AND t=5 go; t=10 is the value in force
        dims = {"it": "m5.large", "region": "us-east-1", "zone": "a"}
        assert table.value_at("sps", dims, 10) == 1
        assert table.value_at("sps", dims, 9) is None

    def test_evict_stats_stay_consistent_with_stored_points(self):
        table = Table("t")
        table.write_records([rec(3, 0), rec(2, 5), rec(1, 10),
                             rec(9, 0, it="c5.large"), rec(8, 10, it="c5.large")])
        table.evict_before(10)
        stored = sum(len(table.series(k) or []) for k in table.series_keys())
        assert table.stats.change_points_stored == stored

    def test_evict_preserves_latest_view(self):
        table = Table("t")
        table.write_records([rec(3, 0), rec(2, 20), rec(1, 40)])
        table.evict_before(40)
        latest = table.latest("sps")
        assert [r.value for r in latest] == [1]
        assert [r.time for r in latest] == [40.0]


class TestGenerationStamps:
    def test_stamp_moves_on_overlapping_write_only(self):
        table = Table("t")
        table.write(rec(3, 0))
        stamp = table.generation_stamp("sps", {"it": "m5.large"})
        # non-overlapping write: different type, different measure
        table.write(rec(1, 5, it="c5.large", measure="price"))
        assert table.generation_stamp("sps", {"it": "m5.large"}) == stamp
        # overlapping write moves the stamp
        table.write(rec(2, 10))
        assert table.generation_stamp("sps", {"it": "m5.large"}) != stamp

    def test_unchanged_value_does_not_move_the_stamp(self):
        # a deduplicated (non-change-point) write is query-invisible
        table = Table("t")
        table.write(rec(3, 0))
        stamp = table.generation_stamp("sps")
        table.write(rec(3, 10))
        assert table.generation_stamp("sps") == stamp

    def test_eviction_moves_the_stamp(self):
        table = Table("t")
        table.write_records([rec(3, 0), rec(2, 20)])
        stamp = table.generation_stamp("sps")
        table.evict_before(20)
        assert table.generation_stamp("sps") != stamp

    def test_unconstrained_stamp_is_the_table_generation(self):
        table = Table("t")
        table.write(rec(3, 0))
        assert table.generation_stamp() == table.generation
